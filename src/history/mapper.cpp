#include "history/mapper.h"

#include <algorithm>

#include "util/strings.h"

namespace histpc::history {

using pc::MapDirective;
using resources::ResourceDb;
using resources::ResourceHierarchy;
using resources::ResourceId;

namespace {

/// Full names of nodes in `h` at each depth that are absent from `other`.
std::vector<std::vector<std::string>> unique_by_depth(const ResourceHierarchy& h,
                                                      const ResourceHierarchy* other) {
  std::vector<std::vector<std::string>> out;
  for (ResourceId id : h.preorder()) {
    const auto& n = h.node(id);
    if (n.depth == 0) continue;
    if (other && other->contains(n.full_name)) continue;
    if (static_cast<std::size_t>(n.depth) > out.size()) out.resize(n.depth);
    out[n.depth - 1].push_back(n.full_name);
  }
  return out;
}

void map_positionally(const ResourceHierarchy& from, const ResourceHierarchy& to,
                      std::vector<MapDirective>& out) {
  // Children of the roots, in insertion order (discovery order of the
  // runs): old k-th <-> new k-th. When the counts differ (e.g. a 4-node
  // run directing an 8-node run), the common prefix is mapped and the
  // surplus resources stay unmapped — they have no history to inherit.
  const auto& fr = from.node(from.root()).children;
  const auto& tr = to.node(to.root()).children;
  const std::size_t n = std::min(fr.size(), tr.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& a = from.node(fr[i]).full_name;
    const std::string& b = to.node(tr[i]).full_name;
    if (a != b) out.push_back({a, b});
  }
}

void map_by_similarity(const ResourceHierarchy& from, const ResourceHierarchy& to,
                       double min_similarity, std::vector<MapDirective>& out) {
  auto from_unique = unique_by_depth(from, &to);
  auto to_unique = unique_by_depth(to, &from);
  const std::size_t depths = std::min(from_unique.size(), to_unique.size());
  for (std::size_t d = 0; d < depths; ++d) {
    std::vector<bool> taken(to_unique[d].size(), false);
    for (const std::string& a : from_unique[d]) {
      double best = min_similarity;
      int best_idx = -1;
      for (std::size_t i = 0; i < to_unique[d].size(); ++i) {
        if (taken[i]) continue;
        // Compare the final label, with the mapped parent as a gate: a
        // renamed function should live in the (possibly renamed) module
        // its ancestor was mapped to. We approximate the gate with full
        // name similarity, which subsumes the parent path.
        double s = util::name_similarity(a, to_unique[d][i]);
        if (s > best) {
          best = s;
          best_idx = static_cast<int>(i);
        }
      }
      if (best_idx >= 0) {
        taken[static_cast<std::size_t>(best_idx)] = true;
        out.push_back({a, to_unique[d][static_cast<std::size_t>(best_idx)]});
      }
    }
  }
}

}  // namespace

std::vector<MapDirective> suggest_mappings(const ResourceDb& from, const ResourceDb& to,
                                           const MapperOptions& options) {
  std::vector<MapDirective> out;
  for (std::size_t i = 0; i < from.num_hierarchies(); ++i) {
    const ResourceHierarchy& fh = from.hierarchy(i);
    int to_idx = to.hierarchy_index(fh.name());
    if (to_idx < 0) continue;
    const ResourceHierarchy& th = to.hierarchy(static_cast<std::size_t>(to_idx));
    const bool positional =
        (fh.name() == resources::kMachineHierarchy && options.positional_machines) ||
        (fh.name() == resources::kProcessHierarchy && options.positional_processes);
    if (positional) {
      map_positionally(fh, th, out);
    } else {
      map_by_similarity(fh, th, options.min_similarity, out);
    }
  }
  return out;
}

}  // namespace histpc::history
