// ExperimentRecord: everything one diagnostic run leaves behind for future
// runs — the program's resource hierarchies, the Search History Graph
// results, and postmortem resource-usage measurements. This is the "store
// of performance data gathered from one or more previous program runs" the
// paper's directive harvesting reads.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/trace_view.h"
#include "pc/consultant.h"
#include "resources/resource_db.h"
#include "util/json.h"

namespace histpc::history {

struct ExperimentRecord {
  std::string app;      ///< application name, e.g. "poisson"
  std::string version;  ///< code version, e.g. "A"
  std::string run_id;   ///< unique per stored run; assigned by the store if empty

  /// Host the run executed (or was simulated) on; filled by make_record.
  /// Part of the store index key, so fleet queries can restrict directive
  /// harvesting to runs from comparable machines. Empty in legacy records.
  std::string machine;
  /// Free-form workload/scenario label (e.g. "strong-scaling-64"), set by
  /// the caller (`histpc run --scenario`). Empty in legacy records.
  std::string scenario;

  double duration = 0.0;  ///< program execution time (virtual seconds)
  int nranks = 0;

  /// The run's resource hierarchies.
  resources::ResourceDb resources;

  /// SHG snapshot: every (hypothesis : focus) pair considered.
  std::vector<pc::NodeSnapshot> nodes;
  /// True conclusions in discovery order with timestamps.
  std::vector<pc::BottleneckReport> bottlenecks;

  /// Postmortem usage per Code resource (module and function): fraction of
  /// total execution time spent there (any state). Basis of the historic
  /// "small function" pruning directives.
  std::map<std::string, double> code_usage;

  /// True when processes and machine nodes map one-to-one (MPI-1 static
  /// process model) — makes the Machine hierarchy redundant.
  bool machine_process_one_to_one = false;

  /// Diagnosis configuration echoes useful for later analysis.
  double threshold_used = 0.0;
  std::size_t pairs_tested = 0;

  util::Json to_json() const;
  static ExperimentRecord from_json(const util::Json& j);
};

/// Build a record from a finished diagnosis. Computes code usage and the
/// process/machine redundancy flag from the trace.
ExperimentRecord make_record(std::string app, std::string version,
                             const metrics::TraceView& view,
                             const pc::DiagnosisResult& result, double threshold_used);

}  // namespace histpc::history
