#include "history/analysis.h"

#include <tuple>

#include "pc/directive_index.h"
#include "resources/focus.h"

namespace histpc::history {

using pc::DirectiveSet;
using pc::Priority;

namespace {

MembershipCounts tally(const std::map<std::pair<std::string, std::string>, unsigned>& masks) {
  MembershipCounts out;
  for (const auto& [key, mask] : masks) {
    (void)key;
    ++out.counts[mask];
    ++out.total;
  }
  return out;
}

}  // namespace

PrioritySimilarity priority_similarity(const std::vector<DirectiveSet>& sets) {
  std::map<std::pair<std::string, std::string>, unsigned> high_masks, low_masks, both_masks;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const unsigned bit = 1u << i;
    for (const auto& p : sets[i].priorities) {
      auto key = std::make_pair(p.hypothesis, p.focus);
      if (p.priority == Priority::High) high_masks[key] |= bit;
      if (p.priority == Priority::Low) low_masks[key] |= bit;
      if (p.priority != Priority::Medium) both_masks[key] |= bit;
    }
  }
  PrioritySimilarity sim;
  sim.high = tally(high_masks);
  sim.low = tally(low_masks);
  sim.both = tally(both_masks);
  return sim;
}

MembershipCounts bottleneck_overlap(
    const std::vector<std::vector<pc::BottleneckReport>>& runs) {
  std::map<std::pair<std::string, std::string>, unsigned> masks;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const unsigned bit = 1u << i;
    for (const auto& b : runs[i]) masks[{b.hypothesis, b.focus}] |= bit;
  }
  return tally(masks);
}

std::vector<pc::BottleneckReport> filter_pruned(
    const std::vector<pc::BottleneckReport>& reference, const pc::DirectiveSet& directives,
    const resources::ResourceDb& db) {
  pc::DirectiveSet mapped = directives;
  mapped.apply_mappings();
  const pc::DirectiveIndex index(mapped);
  std::vector<pc::BottleneckReport> out;
  for (const auto& b : reference) {
    auto focus = resources::Focus::parse(b.focus, db, /*validate_resources=*/false);
    if (focus && index.is_pruned(b.hypothesis, *focus)) continue;
    out.push_back(b);
  }
  return out;
}

std::vector<pc::BottleneckReport> significant_bottlenecks(
    const std::vector<pc::BottleneckReport>& bottlenecks, double min_fraction) {
  std::vector<pc::BottleneckReport> out;
  for (const auto& b : bottlenecks)
    if (b.fraction >= min_fraction) out.push_back(b);
  return out;
}

std::string mask_label(unsigned mask, const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) out += ",";
      out += names[i];
    }
  }
  if (out.empty()) return "(none)";
  // Single membership reads better as "X only".
  if (out.find(',') == std::string::npos) out += " only";
  return out;
}

}  // namespace histpc::history
