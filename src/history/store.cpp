#include "history/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>

#include "history/exp_snapshot.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace histpc::history {

namespace fs = std::filesystem;

std::string escape_run_id_component(std::string_view component) {
  std::string out(component);
  for (char& c : out)
    if (c == '_' || c == '/' || c == '\\') c = '-';
  return out;
}

namespace {

constexpr const char* kBinaryExtension = ".histexp";
constexpr const char* kJsonExtension = ".json";
constexpr const char* kIndexFile = "index-v1.jsonl";

/// Strict trailing-sequence parse: everything after the last '_' must be
/// one or more digits that fit a long. nullopt for foreign names like
/// "notes" or "poisson_A_backup" — callers must not mistake those for
/// sequence numbers.
std::optional<long> parse_seq(std::string_view run_id) {
  const auto pos = run_id.rfind('_');
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string_view digits = run_id.substr(pos + 1);
  if (digits.empty()) return std::nullopt;
  long value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (std::numeric_limits<long>::max() - (c - '0')) / 10) return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

util::Json entry_to_json(const IndexEntry& e) {
  util::Json j = util::Json::object();
  j["run_id"] = e.run_id;
  j["app"] = e.app;
  j["version"] = e.version;
  j["machine"] = e.machine;
  j["scenario"] = e.scenario;
  j["seq"] = static_cast<double>(e.seq);
  j["ranks"] = e.nranks;
  j["duration"] = e.duration;
  j["bottlenecks"] = static_cast<double>(e.bottlenecks);
  return j;
}

IndexEntry entry_from_json(const util::Json& j) {
  IndexEntry e;
  e.run_id = j.at("run_id").as_string();
  e.app = j.at("app").as_string();
  e.version = j.at("version").as_string();
  e.machine = j.get_or("machine", std::string());
  e.scenario = j.get_or("scenario", std::string());
  e.seq = static_cast<long>(j.get_or("seq", 0.0));
  e.nranks = static_cast<int>(j.get_or("ranks", 0.0));
  e.duration = j.get_or("duration", 0.0);
  e.bottlenecks = static_cast<std::size_t>(j.get_or("bottlenecks", 0.0));
  return e;
}

bool matches(const StoreQuery& q, const IndexEntry& e) {
  if (!q.app.empty() && e.app != q.app) return false;
  if (!q.version.empty() && e.version != q.version) return false;
  if (!q.machine.empty() && e.machine != q.machine) return false;
  if (!q.scenario.empty() && e.scenario != q.scenario) return false;
  return true;
}

}  // namespace

bool run_id_natural_less(std::string_view a, std::string_view b) {
  const auto seq_a = parse_seq(a);
  const auto seq_b = parse_seq(b);
  if (seq_a && seq_b) {
    const std::string_view head_a = a.substr(0, a.rfind('_'));
    const std::string_view head_b = b.substr(0, b.rfind('_'));
    if (head_a == head_b && *seq_a != *seq_b) return *seq_a < *seq_b;
  }
  return a < b;
}

IndexEntry make_index_entry(const ExperimentRecord& record) {
  IndexEntry e;
  e.run_id = record.run_id;
  e.app = record.app;
  e.version = record.version;
  e.machine = record.machine;
  e.scenario = record.scenario;
  e.seq = parse_seq(record.run_id).value_or(0);
  e.nranks = record.nranks;
  e.duration = record.duration;
  e.bottlenecks = record.bottlenecks.size();
  return e;
}

ExperimentStore::ExperimentStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
}

std::string ExperimentStore::bin_path_for(const std::string& run_id) const {
  return dir_ + "/" + run_id + kBinaryExtension;
}

std::string ExperimentStore::json_path_for(const std::string& run_id) const {
  return dir_ + "/" + run_id + kJsonExtension;
}

std::string ExperimentStore::index_path() const { return dir_ + "/" + kIndexFile; }

std::set<std::string> ExperimentStore::record_stems() const {
  std::set<std::string> stems;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != kBinaryExtension && ext != kJsonExtension) continue;
    stems.insert(entry.path().stem().string());
  }
  return stems;
}

void ExperimentStore::append_index_line(const util::Json& line) const {
  // A single short appended line is effectively atomic; a crash mid-line
  // leaves one corrupt tail line, which the reader skips with a warning
  // and the next heal pass compacts away.
  std::ofstream out(index_path(), std::ios::app | std::ios::binary);
  if (!out) {
    HISTPC_LOG(Warn) << "cannot append to store index " << index_path();
    return;
  }
  out << line.dump() << "\n";
}

void ExperimentStore::rewrite_index(const IndexState& state) const {
  std::string content;
  for (const auto& [id, entry] : state.entries) content += entry_to_json(entry).dump() + "\n";
  try {
    util::write_file(index_path(), content);  // atomic temp+rename
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "cannot rewrite store index " << index_path() << ": " << e.what();
  }
}

ExperimentStore::IndexState& ExperimentStore::ensure_index_locked() const {
  if (index_) return *index_;
  IndexState st;
  const std::set<std::string> stems = record_stems();

  // Fold the JSONL index: later lines win, tombstones erase, entries whose
  // record file vanished are dropped, unparsable lines are skipped.
  bool compact = false;
  if (fs::exists(index_path())) {
    const std::string content = util::read_file(index_path());
    std::size_t line_no = 0;
    for (std::string_view line : util::split_view(content, '\n')) {
      ++line_no;
      if (line.empty()) continue;
      try {
        const util::Json j = util::Json::parse(std::string(line));
        const std::string id = j.at("run_id").as_string();
        if (j.get_or("removed", false)) {
          st.entries.erase(id);
          continue;
        }
        if (!stems.contains(id)) {
          compact = true;  // stale: the record file is gone
          continue;
        }
        st.entries[id] = entry_from_json(j);
      } catch (const std::exception& e) {
        HISTPC_LOG(Warn) << "skipping corrupt line " << line_no << " of store index "
                         << index_path() << ": " << e.what();
        compact = true;
      }
    }
  }

  // Heal: record files the index does not know about (a legacy JSON
  // directory being adopted, or files copied in by hand) are parsed once
  // and indexed; unreadable ones are remembered so they warn once per
  // instance, not once per query.
  std::vector<util::Json> appended;
  for (const std::string& stem : stems) {
    if (st.entries.contains(stem)) continue;
    // load_file, not try_load: the lock is already held, and the heal pass
    // does its own index bookkeeping right here.
    auto rec = load_file(stem, nullptr);
    if (!rec) {
      st.unloadable.insert(stem);
      continue;
    }
    IndexEntry e = make_index_entry(*rec);
    // Key by the filename stem: that is the id load() answers to, even if
    // a hand-copied file disagrees with its embedded run_id.
    e.run_id = stem;
    e.seq = parse_seq(stem).value_or(0);
    appended.push_back(entry_to_json(e));
    st.entries[stem] = std::move(e);
  }

  index_ = std::move(st);
  if (compact)
    rewrite_index(*index_);  // also folds the healed entries in
  else
    for (const util::Json& line : appended) append_index_line(line);
  return *index_;
}

std::string ExperimentStore::save(ExperimentRecord record) {
  // Exclusive for the whole call: run-id assignment (scan + max+1) must
  // not race another save, and the index append must not interleave.
  std::unique_lock lock(index_mu_);
  if (record.run_id.empty()) {
    // The id embeds *escaped* app/version — '_' inside either field cannot
    // change how the id splits — and the next sequence number is taken
    // over every existing file with the escaped prefix, not just records
    // whose stored fields match: distinct (app, version) pairs that escape
    // to the same prefix share the counter, so filenames stay unique.
    // max + 1 also guarantees ids are never reused after removals.
    const std::string prefix = escape_run_id_component(record.app) + "_" +
                               escape_run_id_component(record.version) + "_";
    long max_seq = 0;
    for (const auto& id : record_stems()) {
      if (!util::starts_with(id, prefix)) continue;
      if (auto seq = parse_seq(id)) max_seq = std::max(max_seq, *seq);
    }
    record.run_id = prefix + std::to_string(max_seq + 1);
  }
  save_experiment_record(record, bin_path_for(record.run_id));
  IndexEntry e = make_index_entry(record);
  append_index_line(entry_to_json(e));
  if (index_) {
    index_->unloadable.erase(e.run_id);
    index_->entries[e.run_id] = std::move(e);
  }
  return record.run_id;
}

std::optional<ExperimentRecord> ExperimentStore::load(const std::string& run_id) const {
  const std::string bin = bin_path_for(run_id);
  if (fs::exists(bin)) return load_experiment_record(bin);  // strict: throws on damage
  const std::string json = json_path_for(run_id);
  if (!fs::exists(json)) return std::nullopt;
  ExperimentRecord rec = ExperimentRecord::from_json(util::Json::parse(util::read_file(json)));
  // Best-effort migration: a failed write (read-only store, disk full)
  // costs speed, never data. The legacy JSON is left in place.
  try {
    save_experiment_record(rec, bin);
    HISTPC_LOG(Debug) << "migrated legacy JSON record " << run_id << " to binary snapshot";
    std::unique_lock lock(index_mu_);
    note_migrated_locked(rec, run_id);
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "cannot migrate record " << run_id << " to binary: " << e.what();
  }
  return rec;
}

std::optional<ExperimentRecord> ExperimentStore::try_load(const std::string& run_id) const {
  bool migrated = false;
  auto rec = load_file(run_id, &migrated);
  if (migrated) {
    std::unique_lock lock(index_mu_);
    note_migrated_locked(*rec, run_id);
  }
  return rec;
}

std::optional<ExperimentRecord> ExperimentStore::load_file(const std::string& run_id,
                                                           bool* migrated) const {
  const std::string bin = bin_path_for(run_id);
  const std::string json = json_path_for(run_id);
  if (fs::exists(bin)) {
    try {
      return load_experiment_record(bin);
    } catch (const std::exception& e) {
      HISTPC_LOG(Warn) << "quarantining unreadable store record " << bin << ": " << e.what();
      // Fall through: an intact legacy JSON can repair the binary.
    }
  }
  if (!fs::exists(json)) return std::nullopt;
  try {
    ExperimentRecord rec =
        ExperimentRecord::from_json(util::Json::parse(util::read_file(json)));
    // Best-effort migration at the file level only (the caller owns index
    // bookkeeping): writes the binary *under the requested id*, so the
    // record load() answers to is the one that gets fast next time even
    // when a hand-copied file disagrees with its embedded run_id.
    try {
      save_experiment_record(rec, bin);
      HISTPC_LOG(Debug) << "migrated legacy JSON record " << run_id << " to binary snapshot";
      if (migrated) *migrated = true;
    } catch (const std::exception& e) {
      HISTPC_LOG(Warn) << "cannot migrate record " << run_id << " to binary: " << e.what();
    }
    return rec;
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "quarantining unreadable store record " << json << ": " << e.what();
    return std::nullopt;
  }
}

void ExperimentStore::note_migrated_locked(const ExperimentRecord& record,
                                           const std::string& run_id) const {
  IndexEntry e = make_index_entry(record);
  e.run_id = run_id;
  e.seq = parse_seq(run_id).value_or(0);
  if (!index_ || !index_->entries.contains(run_id)) append_index_line(entry_to_json(e));
  if (index_) {
    index_->unloadable.erase(run_id);
    index_->entries[run_id] = std::move(e);
  }
}

std::vector<std::string> ExperimentStore::list(const std::string& app,
                                               const std::string& version) const {
  std::vector<std::string> out;
  if (app.empty() && version.empty()) {
    // Unfiltered: a pure directory view (foreign files included), no index
    // required and no warnings emitted.
    const auto stems = record_stems();
    out.assign(stems.begin(), stems.end());
  } else {
    for (const IndexEntry& e : summaries({app, version, "", ""})) out.push_back(e.run_id);
  }
  std::sort(out.begin(), out.end(),
            [](const std::string& a, const std::string& b) { return run_id_natural_less(a, b); });
  return out;
}

std::vector<IndexEntry> ExperimentStore::summaries(const StoreQuery& query) const {
  std::vector<IndexEntry> out;
  const auto collect = [&](const IndexState& st) {
    for (const auto& [id, e] : st.entries)
      if (matches(query, e)) out.push_back(e);
  };
  // Fast path: fold already done, read under a shared lock — this is what
  // lets every serve worker answer list/latest queries concurrently.
  {
    std::shared_lock lock(index_mu_);
    if (index_) collect(*index_);
  }
  if (out.empty()) {
    // Slow path: the fold may not have happened yet (or genuinely matched
    // nothing — rebuilding an already-built index is a cheap no-op).
    std::unique_lock lock(index_mu_);
    out.clear();
    collect(ensure_index_locked());
  }
  std::sort(out.begin(), out.end(), [](const IndexEntry& a, const IndexEntry& b) {
    return run_id_natural_less(a.run_id, b.run_id);
  });
  return out;
}

std::optional<ExperimentRecord> ExperimentStore::latest(const StoreQuery& query) const {
  // Highest sequence first (ties toward the naturally-larger id); load
  // only the winner. A record that fails to load is skipped with a warning
  // (try_load) and dropped from this instance's view, and the next
  // candidate wins — one damaged file cannot abort the query. Candidates
  // are copied out so no index reference outlives the lock.
  struct Candidate {
    std::string run_id;
    long seq;
  };
  std::vector<Candidate> candidates;
  bool folded = false;
  {
    std::shared_lock lock(index_mu_);
    if (index_) {
      folded = true;
      for (const auto& [id, e] : index_->entries)
        if (matches(query, e)) candidates.push_back({e.run_id, e.seq});
    }
  }
  if (!folded) {
    std::unique_lock lock(index_mu_);
    for (const auto& [id, e] : ensure_index_locked().entries)
      if (matches(query, e)) candidates.push_back({e.run_id, e.seq});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.seq != b.seq) return a.seq > b.seq;
    return run_id_natural_less(b.run_id, a.run_id);
  });
  for (const Candidate& c : candidates) {
    auto rec = try_load(c.run_id);
    if (rec) return rec;
    std::unique_lock lock(index_mu_);
    if (index_) {
      index_->unloadable.insert(c.run_id);
      index_->entries.erase(c.run_id);
    }
  }
  return std::nullopt;
}

std::optional<ExperimentRecord> ExperimentStore::latest(const std::string& app,
                                                        const std::string& version) const {
  return latest(StoreQuery{app, version, "", ""});
}

std::optional<ExperimentRecord> ExperimentStore::scan_latest(const std::string& app,
                                                             const std::string& version) const {
  // The pre-index implementation: parse every record, keep the highest
  // sequence (lexicographic order mis-sorts _10 before _2, so compare
  // sequence numbers; ids without a numeric tail rank as 0).
  std::optional<ExperimentRecord> best;
  long best_seq = -1;
  for (const auto& id : record_stems()) {
    const long seq = parse_seq(id).value_or(0);
    if (seq <= best_seq) continue;
    // Side-effect free (unlike try_load, no migration): the oracle must
    // read whatever format is on disk without changing it, or it could
    // not serve as the bench's JSON re-parse baseline.
    std::optional<ExperimentRecord> rec;
    try {
      const std::string bin = bin_path_for(id);
      if (fs::exists(bin))
        rec = load_experiment_record(bin);
      else
        rec = ExperimentRecord::from_json(util::Json::parse(util::read_file(json_path_for(id))));
    } catch (const std::exception& e) {
      HISTPC_LOG(Warn) << "quarantining unreadable store record " << id << ": " << e.what();
      continue;
    }
    if (!app.empty() && rec->app != app) continue;
    if (!version.empty() && rec->version != version) continue;
    best = std::move(rec);
    best_seq = seq;
  }
  return best;
}

bool ExperimentStore::remove(const std::string& run_id) {
  std::error_code ec;
  const bool had_bin = fs::remove(bin_path_for(run_id), ec);
  const bool had_json = fs::remove(json_path_for(run_id), ec);
  if (!had_bin && !had_json) return false;
  util::Json tomb = util::Json::object();
  tomb["run_id"] = run_id;
  tomb["removed"] = true;
  std::unique_lock lock(index_mu_);
  append_index_line(tomb);
  if (index_) {
    index_->entries.erase(run_id);
    index_->unloadable.erase(run_id);
  }
  return true;
}

std::size_t ExperimentStore::migrate_all(int jobs) {
  // Snapshot the JSON-only stems before touching the index; sorted order
  // (set iteration) is what makes the bookkeeping below deterministic.
  std::vector<std::string> pending;
  for (const std::string& stem : record_stems())
    if (!fs::exists(bin_path_for(stem)) && fs::exists(json_path_for(stem)))
      pending.push_back(stem);

  // Parallel phase: parse the JSON and encode the binary for each pending
  // stem. Pure file work — load_file touches no shared state, and every
  // worker writes a distinct stem — so the workers share only the pool.
  std::vector<std::optional<ExperimentRecord>> converted(pending.size());
  const auto convert = [&](std::size_t i) {
    bool migrated = false;
    auto rec = load_file(pending[i], &migrated);
    if (rec && migrated) converted[i] = std::move(rec);
  };
  const int workers = std::max(
      1, std::min(util::ThreadPool::resolve(jobs), static_cast<int>(pending.size())));
  if (workers > 1) {
    util::ThreadPool pool(workers);
    for (std::size_t i = 0; i < pending.size(); ++i) pool.submit([&convert, i] { convert(i); });
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < pending.size(); ++i) convert(i);
  }

  // Sequential phase: fold the results into the index in sorted-stem
  // order under one exclusive lock, so the index file and the in-memory
  // view come out identical for every thread count.
  std::size_t migrated = 0;
  std::unique_lock lock(index_mu_);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!converted[i]) continue;
    ++migrated;
    note_migrated_locked(*converted[i], pending[i]);
  }
  ensure_index_locked();  // adopt + index everything readable
  return migrated;
}

}  // namespace histpc::history
