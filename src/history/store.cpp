#include "history/store.h"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "util/log.h"
#include "util/strings.h"

namespace histpc::history {

namespace fs = std::filesystem;

std::string escape_run_id_component(std::string_view component) {
  std::string out(component);
  for (char& c : out)
    if (c == '_' || c == '/' || c == '\\') c = '-';
  return out;
}

namespace {
/// Strict trailing-sequence parse: everything after the last '_' must be
/// one or more digits that fit a long. nullopt for foreign names like
/// "notes" or "poisson_A_backup" — callers must not mistake those for
/// sequence numbers.
std::optional<long> parse_seq(std::string_view run_id) {
  const auto pos = run_id.rfind('_');
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string_view digits = run_id.substr(pos + 1);
  if (digits.empty()) return std::nullopt;
  long value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (std::numeric_limits<long>::max() - (c - '0')) / 10) return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}
}  // namespace

ExperimentStore::ExperimentStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
}

std::string ExperimentStore::path_for(const std::string& run_id) const {
  return dir_ + "/" + run_id + ".json";
}

std::string ExperimentStore::save(ExperimentRecord record) {
  if (record.run_id.empty()) {
    // The id embeds *escaped* app/version — '_' inside either field cannot
    // change how the id splits — and the next sequence number is taken
    // over every existing file with the escaped prefix, not just records
    // whose stored fields match: distinct (app, version) pairs that escape
    // to the same prefix share the counter, so filenames stay unique.
    // max + 1 also guarantees ids are never reused after removals.
    const std::string prefix = escape_run_id_component(record.app) + "_" +
                               escape_run_id_component(record.version) + "_";
    long max_seq = 0;
    for (const auto& id : list()) {
      if (!util::starts_with(id, prefix)) continue;
      if (auto seq = parse_seq(id)) max_seq = std::max(max_seq, *seq);
    }
    record.run_id = prefix + std::to_string(max_seq + 1);
  }
  util::write_file(path_for(record.run_id), record.to_json().dump(2));
  return record.run_id;
}

std::optional<ExperimentRecord> ExperimentStore::load(const std::string& run_id) const {
  const std::string path = path_for(run_id);
  if (!fs::exists(path)) return std::nullopt;
  return ExperimentRecord::from_json(util::Json::parse(util::read_file(path)));
}

std::optional<ExperimentRecord> ExperimentStore::try_load(const std::string& run_id) const {
  const std::string path = path_for(run_id);
  if (!fs::exists(path)) return std::nullopt;
  try {
    return ExperimentRecord::from_json(util::Json::parse(util::read_file(path)));
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "quarantining unreadable store record " << path << ": " << e.what();
    return std::nullopt;
  }
}

std::vector<std::string> ExperimentStore::list(const std::string& app,
                                               const std::string& version) const {
  std::vector<std::string> out;
  if (!fs::exists(dir_)) return out;
  const bool filtered = !app.empty() || !version.empty();
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") continue;
    std::string run_id = entry.path().stem().string();
    if (filtered) {
      // Match on the record's stored fields: id-prefix matching is
      // ambiguous when app or version contain '_' ("a_b_c_1" splits two
      // ways), and the stored fields survive run-id escaping unchanged.
      auto rec = try_load(run_id);
      if (!rec) continue;
      if (!app.empty() && rec->app != app) continue;
      if (!version.empty() && rec->version != version) continue;
    }
    out.push_back(std::move(run_id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<ExperimentRecord> ExperimentStore::latest(const std::string& app,
                                                        const std::string& version) const {
  // Lexicographic order mis-sorts _10 before _2; compare sequence numbers
  // (ids without a numeric tail — explicit caller-chosen run_ids — rank as
  // 0). try_load skips and logs corrupt or foreign files instead of
  // letting one damaged record abort the whole query.
  std::optional<ExperimentRecord> best;
  long best_seq = -1;
  for (const auto& id : list()) {
    const long seq = parse_seq(id).value_or(0);
    if (seq <= best_seq) continue;
    auto rec = try_load(id);
    if (!rec) continue;
    if (!app.empty() && rec->app != app) continue;
    if (!version.empty() && rec->version != version) continue;
    best = std::move(rec);
    best_seq = seq;
  }
  return best;
}

bool ExperimentStore::remove(const std::string& run_id) {
  return fs::remove(path_for(run_id));
}

}  // namespace histpc::history
