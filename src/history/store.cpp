#include "history/store.h"

#include <algorithm>
#include <filesystem>

#include "util/strings.h"

namespace histpc::history {

namespace fs = std::filesystem;

ExperimentStore::ExperimentStore(std::string directory) : dir_(std::move(directory)) {
  fs::create_directories(dir_);
}

std::string ExperimentStore::path_for(const std::string& run_id) const {
  return dir_ + "/" + run_id + ".json";
}

std::string ExperimentStore::save(ExperimentRecord record) {
  if (record.run_id.empty()) {
    // Next sequence number = max existing + 1, so ids never collide even
    // after removals.
    long max_seq = 0;
    for (const auto& id : list(record.app, record.version)) {
      auto pos = id.rfind('_');
      if (pos == std::string::npos) continue;
      try {
        max_seq = std::max(max_seq, std::stol(id.substr(pos + 1)));
      } catch (const std::exception&) {
        // Foreign file in the store directory; ignore for numbering.
      }
    }
    record.run_id =
        record.app + "_" + record.version + "_" + std::to_string(max_seq + 1);
  }
  util::write_file(path_for(record.run_id), record.to_json().dump(2));
  return record.run_id;
}

std::optional<ExperimentRecord> ExperimentStore::load(const std::string& run_id) const {
  const std::string path = path_for(run_id);
  if (!fs::exists(path)) return std::nullopt;
  return ExperimentRecord::from_json(util::Json::parse(util::read_file(path)));
}

std::vector<std::string> ExperimentStore::list(const std::string& app,
                                               const std::string& version) const {
  std::vector<std::string> out;
  if (!fs::exists(dir_)) return out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") continue;
    std::string run_id = entry.path().stem().string();
    if (!app.empty() || !version.empty()) {
      std::string prefix = app.empty() ? "" : app + "_";
      if (!version.empty()) prefix += version + "_";
      if (!util::starts_with(run_id, prefix)) continue;
    }
    out.push_back(std::move(run_id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<ExperimentRecord> ExperimentStore::latest(const std::string& app,
                                                        const std::string& version) const {
  auto ids = list(app, version);
  // Lexicographic order mis-sorts _10 before _2; compare sequence numbers.
  std::optional<ExperimentRecord> best;
  long best_seq = -1;
  for (const auto& id : ids) {
    auto pos = id.rfind('_');
    long seq = 0;
    if (pos != std::string::npos) {
      try {
        seq = std::stol(id.substr(pos + 1));
      } catch (const std::exception&) {
        seq = 0;
      }
    }
    if (seq > best_seq) {
      if (auto rec = load(id)) {
        best = std::move(rec);
        best_seq = seq;
      }
    }
  }
  return best;
}

bool ExperimentStore::remove(const std::string& run_id) {
  return fs::remove(path_for(run_id));
}

}  // namespace histpc::history
