// Execution maps (paper Figure 3): the combined resource hierarchies of two
// executions, with each resource tagged by where it occurs —
// 1 = only the first execution, 2 = only the second, 3 = both.
// Unique resources (tags 1 and 2) are the candidates for mapping.
#pragma once

#include <string>
#include <unordered_map>

#include "resources/resource_db.h"

namespace histpc::history {

struct ExecutionMap {
  resources::ResourceDb combined;
  /// full resource name -> "1" / "2" / "3"
  std::unordered_map<std::string, std::string> tags;

  /// Resources unique to execution 1 / 2 (mapping candidates).
  std::vector<std::string> unique_to(int execution) const;

  /// Figure 3-style rendering: each hierarchy tree with [tag] suffixes.
  std::string render() const;
};

ExecutionMap build_execution_map(const resources::ResourceDb& first,
                                 const resources::ResourceDb& second);

}  // namespace histpc::history
