// Run similarity: which historical runs should feed directives for a new
// execution?
//
// The paper hand-picks the prior runs to harvest from; at fleet scale
// (thousands of stored runs per app) that choice must be automatic. Each
// candidate record is scored against a reference run on the dimensions
// that predict transferable diagnosis behaviour — same code version, same
// machine, same scenario label, comparable scale (ranks / duration), and
// overlapping code-usage profile — and the top-scoring runs become the
// inputs to weighted N-run aggregation (combiner.h). This is the
// cross-run-analysis direction of Cankur et al. (arXiv 2401.13150).
//
// Everything here is deterministic: ties in score break on run_id, so the
// same store always selects the same runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "history/experiment.h"

namespace histpc::history {

struct SimilarityWeights {
  double version = 0.30;   ///< code version match (edit-distance graded)
  double machine = 0.10;   ///< same host
  double scenario = 0.15;  ///< same scenario label
  double scale = 0.15;     ///< rank-count and duration ratios
  double usage = 0.30;     ///< cosine similarity of code-usage profiles
};

/// Similarity of `candidate` to `reference` in [0, 1]. Records of a
/// different app score 0 — directives never cross applications. Fields
/// empty on BOTH sides (e.g. two legacy records without a machine) count
/// as a match; a field known on one side only scores 0 for that term.
double run_similarity(const ExperimentRecord& reference, const ExperimentRecord& candidate,
                      const SimilarityWeights& weights = {});

struct SelectedRun {
  std::string run_id;
  double similarity = 0.0;
};

/// Rank `candidates` by run_similarity to `reference` and keep the top
/// `max_runs` scoring at least `min_similarity`. The result is ordered by
/// run-id sequence (oldest first) — the order weighted aggregation expects
/// for recency weighting — with the score preserved for reporting.
/// Deterministic: equal scores break toward the lexicographically smaller
/// run_id.
std::vector<SelectedRun> select_similar_runs(const std::vector<ExperimentRecord>& candidates,
                                             const ExperimentRecord& reference,
                                             std::size_t max_runs,
                                             double min_similarity = 0.0,
                                             const SimilarityWeights& weights = {});

}  // namespace histpc::history
