// Human-oriented tuning report generated from an experiment record: what a
// developer reads between runs of the profile-analyze-change cycle.
#pragma once

#include <string>

#include "history/experiment.h"

namespace histpc::history {

struct ReportOptions {
  std::size_t max_bottlenecks = 15;  ///< per section
  /// Markdown (default) or plain text headers.
  bool markdown = true;
};

/// Render a report: headline hypothesis verdicts, the dominant bottlenecks,
/// per-hierarchy hot spots (which code / which processes / which messages),
/// and the knowledge the run contributes to future diagnoses.
std::string tuning_report(const ExperimentRecord& record, const ReportOptions& options = {});

}  // namespace histpc::history
