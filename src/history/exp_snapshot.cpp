#include "history/exp_snapshot.h"

#include <limits>
#include <map>
#include <vector>

#include "util/binio.h"
#include "util/crc32c.h"
#include "util/json.h"  // read_file / write_file

namespace histpc::history {

namespace {

constexpr std::size_t kHeaderSize = 12;  // magic (8) + version (4)
constexpr std::size_t kTrailerSize = 4;  // CRC32

using util::crc32c;
using util::binio::put_column;
using util::binio::put_f64;
using util::binio::put_str;
using util::binio::put_u32;
using util::binio::put_u64;
using util::binio::put_u8;
using Cursor = util::binio::Cursor<ExpSnapshotError>;

/// Insertion-ordered string interner for the snapshot's string table.
class StringTable {
 public:
  std::uint32_t intern(const std::string& s) {
    auto [it, inserted] = index_.try_emplace(s, static_cast<std::uint32_t>(strings_.size()));
    if (inserted) strings_.push_back(&it->first);
    return it->second;
  }

  void write(std::string& out) const {
    put_u32(out, static_cast<std::uint32_t>(strings_.size()));
    for (const std::string* s : strings_) put_str(out, *s);
  }

 private:
  std::map<std::string, std::uint32_t> index_;
  std::vector<const std::string*> strings_;
};

/// Bounds-checked lookup into the decoded string table.
const std::string& table_at(const std::vector<std::string>& table, std::uint32_t idx,
                            const char* what) {
  if (idx >= table.size())
    throw ExpSnapshotError("string-table index " + std::to_string(idx) + " out of range for " +
                           std::string(what) + " (table has " + std::to_string(table.size()) +
                           " entries)");
  return table[idx];
}

constexpr std::uint8_t kMaxNodeStatus = static_cast<std::uint8_t>(pc::NodeStatus::NeverRan);
constexpr std::uint8_t kMaxPriority = static_cast<std::uint8_t>(pc::Priority::High);

}  // namespace

std::string encode_experiment_record(const ExperimentRecord& record) {
  std::string out;
  out.reserve(kHeaderSize + 256 + record.nodes.size() * 26 + record.bottlenecks.size() * 24 +
              record.code_usage.size() * 12 + kTrailerSize);
  out.append(kExpSnapshotMagic);
  put_u32(out, kExpSnapshotVersion);

  put_str(out, record.app);
  put_str(out, record.version);
  put_str(out, record.run_id);
  put_str(out, record.machine);
  put_str(out, record.scenario);
  put_f64(out, record.duration);
  put_u32(out, static_cast<std::uint32_t>(record.nranks));
  put_u8(out, record.machine_process_one_to_one ? 1 : 0);
  put_f64(out, record.threshold_used);
  put_u64(out, static_cast<std::uint64_t>(record.pairs_tested));

  // Two passes over the interned names: one to populate the table (which
  // must precede its users in the byte stream), one to emit the columns.
  StringTable table;
  struct HierEnc {
    std::uint32_t name_idx;
    std::vector<std::uint32_t> resources;
  };
  std::vector<HierEnc> hiers;
  hiers.reserve(record.resources.num_hierarchies());
  for (std::size_t i = 0; i < record.resources.num_hierarchies(); ++i) {
    const auto& h = record.resources.hierarchy(i);
    HierEnc enc;
    enc.name_idx = table.intern(h.name());
    for (resources::ResourceId id : h.preorder()) {
      if (id == h.root()) continue;  // the root is implied by the name
      enc.resources.push_back(table.intern(h.node(id).full_name));
    }
    hiers.push_back(std::move(enc));
  }

  std::vector<std::uint32_t> node_hyp, node_focus;
  std::vector<std::uint8_t> node_status, node_priority;
  std::vector<double> node_conclude, node_fraction;
  node_hyp.reserve(record.nodes.size());
  for (const pc::NodeSnapshot& n : record.nodes) {
    node_hyp.push_back(table.intern(n.hypothesis));
    node_focus.push_back(table.intern(n.focus));
    node_status.push_back(static_cast<std::uint8_t>(n.status));
    node_priority.push_back(static_cast<std::uint8_t>(n.priority));
    node_conclude.push_back(n.conclude_time);
    node_fraction.push_back(n.fraction);
  }

  std::vector<std::uint32_t> bn_hyp, bn_focus;
  std::vector<double> bn_t, bn_fraction;
  bn_hyp.reserve(record.bottlenecks.size());
  for (const pc::BottleneckReport& b : record.bottlenecks) {
    bn_hyp.push_back(table.intern(b.hypothesis));
    bn_focus.push_back(table.intern(b.focus));
    bn_t.push_back(b.t_found);
    bn_fraction.push_back(b.fraction);
  }

  std::vector<std::uint32_t> usage_name;
  std::vector<double> usage_fraction;
  usage_name.reserve(record.code_usage.size());
  for (const auto& [name, frac] : record.code_usage) {
    usage_name.push_back(table.intern(name));
    usage_fraction.push_back(frac);
  }

  table.write(out);

  put_u32(out, static_cast<std::uint32_t>(hiers.size()));
  for (const HierEnc& h : hiers) {
    put_u32(out, h.name_idx);
    put_u32(out, static_cast<std::uint32_t>(h.resources.size()));
    put_column(out, h.resources);
  }

  put_u64(out, static_cast<std::uint64_t>(record.nodes.size()));
  put_column(out, node_hyp);
  put_column(out, node_focus);
  put_column(out, node_status);
  put_column(out, node_priority);
  put_column(out, node_conclude);
  put_column(out, node_fraction);

  put_u64(out, static_cast<std::uint64_t>(record.bottlenecks.size()));
  put_column(out, bn_hyp);
  put_column(out, bn_focus);
  put_column(out, bn_t);
  put_column(out, bn_fraction);

  put_u64(out, static_cast<std::uint64_t>(record.code_usage.size()));
  put_column(out, usage_name);
  put_column(out, usage_fraction);

  put_u32(out, crc32c(std::string_view(out).substr(kHeaderSize)));
  return out;
}

ExperimentRecord decode_experiment_record(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + kTrailerSize)
    throw ExpSnapshotError("snapshot too small (" + std::to_string(bytes.size()) + " bytes)");
  if (bytes.substr(0, kExpSnapshotMagic.size()) != kExpSnapshotMagic)
    throw ExpSnapshotError("bad snapshot magic (not a histpc-exp-bin file)");

  Cursor cur{bytes.data(), bytes.size() - kTrailerSize, kExpSnapshotMagic.size()};
  const std::uint32_t version = cur.u32("format version");
  if (version != kExpSnapshotVersion)
    throw ExpSnapshotError("unsupported snapshot version " + std::to_string(version) +
                           " (expected " + std::to_string(kExpSnapshotVersion) + ")");

  const std::string_view payload =
      bytes.substr(kHeaderSize, bytes.size() - kHeaderSize - kTrailerSize);
  Cursor trailer{bytes.data(), bytes.size(), bytes.size() - kTrailerSize};
  const std::uint32_t stored_crc = trailer.u32("payload CRC");
  const std::uint32_t computed_crc = crc32c(payload);
  if (stored_crc != computed_crc)
    throw ExpSnapshotError("snapshot CRC mismatch (stored " + std::to_string(stored_crc) +
                           ", computed " + std::to_string(computed_crc) + ")");

  ExperimentRecord r;
  r.app = cur.str("app");
  r.version = cur.str("version");
  r.run_id = cur.str("run id");
  r.machine = cur.str("machine");
  r.scenario = cur.str("scenario");
  r.duration = cur.f64("duration");
  r.nranks = static_cast<int>(cur.u32("rank count"));
  const std::uint8_t flags = cur.u8("flags");
  if (flags > 1) throw ExpSnapshotError("invalid flags byte " + std::to_string(flags));
  r.machine_process_one_to_one = flags & 1;
  r.threshold_used = cur.f64("threshold used");
  r.pairs_tested = static_cast<std::size_t>(cur.u64("pairs tested"));

  const std::uint32_t table_size = cur.u32("string table size");
  std::vector<std::string> table;
  table.reserve(table_size);
  for (std::uint32_t i = 0; i < table_size; ++i) table.push_back(cur.str("string table entry"));

  const std::uint32_t nhiers = cur.u32("hierarchy count");
  for (std::uint32_t i = 0; i < nhiers; ++i) {
    const std::string& name = table_at(table, cur.u32("hierarchy name"), "hierarchy name");
    r.resources.add_hierarchy(name);
    const std::uint32_t nres = cur.u32("resource count");
    std::vector<std::uint32_t> res;
    cur.column(res, nres, "resource names");
    for (std::uint32_t idx : res) {
      const std::string& full = table_at(table, idx, "resource name");
      try {
        r.resources.add_resource(full);
      } catch (const std::exception& e) {
        throw ExpSnapshotError("invalid resource name in snapshot: " + std::string(e.what()));
      }
    }
  }

  const std::uint64_t nnodes64 = cur.u64("node count");
  if (nnodes64 > std::numeric_limits<std::uint32_t>::max())
    throw ExpSnapshotError("implausible node count " + std::to_string(nnodes64));
  const std::size_t nnodes = static_cast<std::size_t>(nnodes64);
  std::vector<std::uint32_t> node_hyp, node_focus;
  std::vector<std::uint8_t> node_status, node_priority;
  std::vector<double> node_conclude, node_fraction;
  cur.column(node_hyp, nnodes, "node hypothesis column");
  cur.column(node_focus, nnodes, "node focus column");
  cur.column(node_status, nnodes, "node status column");
  cur.column(node_priority, nnodes, "node priority column");
  cur.column(node_conclude, nnodes, "node conclude-time column");
  cur.column(node_fraction, nnodes, "node fraction column");
  r.nodes.resize(nnodes);
  for (std::size_t i = 0; i < nnodes; ++i) {
    pc::NodeSnapshot& n = r.nodes[i];
    n.hypothesis = table_at(table, node_hyp[i], "node hypothesis");
    n.focus = table_at(table, node_focus[i], "node focus");
    if (node_status[i] > kMaxNodeStatus)
      throw ExpSnapshotError("invalid node status " + std::to_string(node_status[i]));
    if (node_priority[i] > kMaxPriority)
      throw ExpSnapshotError("invalid node priority " + std::to_string(node_priority[i]));
    n.status = static_cast<pc::NodeStatus>(node_status[i]);
    n.priority = static_cast<pc::Priority>(node_priority[i]);
    n.conclude_time = node_conclude[i];
    n.fraction = node_fraction[i];
  }

  const std::uint64_t nbn64 = cur.u64("bottleneck count");
  if (nbn64 > std::numeric_limits<std::uint32_t>::max())
    throw ExpSnapshotError("implausible bottleneck count " + std::to_string(nbn64));
  const std::size_t nbn = static_cast<std::size_t>(nbn64);
  std::vector<std::uint32_t> bn_hyp, bn_focus;
  std::vector<double> bn_t, bn_fraction;
  cur.column(bn_hyp, nbn, "bottleneck hypothesis column");
  cur.column(bn_focus, nbn, "bottleneck focus column");
  cur.column(bn_t, nbn, "bottleneck time column");
  cur.column(bn_fraction, nbn, "bottleneck fraction column");
  r.bottlenecks.resize(nbn);
  for (std::size_t i = 0; i < nbn; ++i) {
    pc::BottleneckReport& b = r.bottlenecks[i];
    b.hypothesis = table_at(table, bn_hyp[i], "bottleneck hypothesis");
    b.focus = table_at(table, bn_focus[i], "bottleneck focus");
    b.t_found = bn_t[i];
    b.fraction = bn_fraction[i];
  }

  const std::uint64_t nusage64 = cur.u64("code-usage count");
  if (nusage64 > std::numeric_limits<std::uint32_t>::max())
    throw ExpSnapshotError("implausible code-usage count " + std::to_string(nusage64));
  const std::size_t nusage = static_cast<std::size_t>(nusage64);
  std::vector<std::uint32_t> usage_name;
  std::vector<double> usage_fraction;
  cur.column(usage_name, nusage, "code-usage name column");
  cur.column(usage_fraction, nusage, "code-usage fraction column");
  for (std::size_t i = 0; i < nusage; ++i)
    r.code_usage[table_at(table, usage_name[i], "code-usage name")] = usage_fraction[i];

  if (cur.off != cur.size)
    throw ExpSnapshotError("snapshot has " + std::to_string(cur.size - cur.off) +
                           " trailing payload bytes");
  return r;
}

void save_experiment_record(const ExperimentRecord& record, const std::string& path) {
  util::write_file(path, encode_experiment_record(record));
}

ExperimentRecord load_experiment_record(const std::string& path) {
  return decode_experiment_record(util::read_file(path));
}

}  // namespace histpc::history
