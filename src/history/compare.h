// Quantitative comparison of two diagnosed executions — the experiment-
// management capability the paper builds on (Karavanic & Miller, SC'97):
// after a code change, which bottlenecks were resolved, which appeared,
// and which moved?
#pragma once

#include <string>
#include <vector>

#include "history/experiment.h"
#include "pc/directives.h"

namespace histpc::history {

struct RunComparison {
  struct CommonBottleneck {
    std::string hypothesis;
    std::string focus;       ///< in run B's namespace
    double fraction_a = 0.0;
    double fraction_b = 0.0;
    double delta() const { return fraction_b - fraction_a; }
  };

  /// Bottlenecks of run A absent from run B (resolved), in A's own
  /// namespace before mapping.
  std::vector<pc::BottleneckReport> resolved;
  /// Bottlenecks of run B absent from run A (new).
  std::vector<pc::BottleneckReport> appeared;
  /// Present in both, with both measured fractions.
  std::vector<CommonBottleneck> common;
};

/// Compare bottleneck sets. `maps` translate run A's resource names into
/// run B's namespace first (pass suggest_mappings(a.resources,
/// b.resources) for cross-version comparisons).
RunComparison compare_records(const ExperimentRecord& a, const ExperimentRecord& b,
                              const std::vector<pc::MapDirective>& maps = {});

/// Human-readable rendering: resolved / appeared / biggest movers.
std::string render_comparison(const RunComparison& cmp, const std::string& name_a,
                              const std::string& name_b, std::size_t max_rows = 12);

}  // namespace histpc::history
