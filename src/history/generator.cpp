#include "history/generator.h"

#include <algorithm>
#include <map>

#include "pc/directive_index.h"
#include "util/strings.h"

namespace histpc::history {

using pc::DirectiveSet;
using pc::HypothesisSet;
using pc::Priority;

void DirectiveGenerator::add_general_prunes(const ExperimentRecord& record,
                                            const HypothesisSet& hyps,
                                            DirectiveSet& out) const {
  // SyncObject refinement is meaningless for non-synchronization
  // hypotheses: those metrics have no per-message component.
  for (const auto& h : hyps.all())
    if (!h.sync_related) out.prunes.push_back({h.name, "/SyncObject"});
  // Redundant hierarchy: process <-> node is a bijection, so refining by
  // machine duplicates refining by process.
  if (record.machine_process_one_to_one)
    out.prunes.push_back({std::string(pc::kAnyHypothesis), "/Machine"});
}

void DirectiveGenerator::add_historic_prunes(const ExperimentRecord& record,
                                             DirectiveSet& out) const {
  // Prune small code resources. Emitting only subtree roots keeps the
  // directive list short: if a whole module is negligible, its functions
  // need no directives of their own. code_usage iterates in lexicographic
  // order, so a module is always seen before its functions.
  pc::PrefixSet pruned;
  for (const auto& [res, frac] : record.code_usage) {
    if (frac >= options_.small_code_fraction) continue;
    if (pruned.contains_prefix_of(res)) continue;
    pruned.insert(res);
    out.prunes.push_back({std::string(pc::kAnyHypothesis), res});
  }
}

void DirectiveGenerator::add_thresholds(const std::vector<const ExperimentRecord*>& records,
                                        const HypothesisSet& hyps, DirectiveSet& out) const {
  // For each hypothesis, find the smallest historically significant
  // fraction among concluded pairs and set the threshold just below it, so
  // a new run reports the full set of significant regions without paying
  // for noise below them.
  for (const auto& h : hyps.all()) {
    double min_significant = -1.0;
    for (const ExperimentRecord* rec : records) {
      for (const auto& n : rec->nodes) {
        if (n.hypothesis != h.name) continue;
        if (n.conclude_time < 0) continue;  // never measured
        if (n.fraction < options_.significance_floor) continue;
        if (min_significant < 0 || n.fraction < min_significant)
          min_significant = n.fraction;
      }
    }
    if (min_significant < 0) continue;
    double threshold = options_.threshold_margin * min_significant;
    threshold = std::clamp(threshold, 0.05, 0.5);
    out.thresholds.push_back({h.name, threshold});
  }
}

pc::DirectiveSet DirectiveGenerator::from_record(const ExperimentRecord& record,
                                                 const HypothesisSet& hyps) const {
  return from_records({record}, hyps);
}

pc::DirectiveSet DirectiveGenerator::from_records(const std::vector<ExperimentRecord>& records,
                                                  const HypothesisSet& hyps) const {
  DirectiveSet out;
  if (records.empty()) return out;

  if (options_.general_prunes) add_general_prunes(records.front(), hyps, out);
  if (options_.historic_prunes)
    for (const auto& rec : records) add_historic_prunes(rec, out);

  if (options_.priorities || options_.false_pair_prunes) {
    // Pair -> (ever true, ever false). High beats low when runs disagree:
    // a pair that was ever a bottleneck deserves immediate attention.
    std::map<std::pair<std::string, std::string>, std::pair<bool, bool>> outcomes;
    for (const auto& rec : records) {
      for (const auto& n : rec.nodes) {
        auto& o = outcomes[{n.hypothesis, n.focus}];
        if (n.status == pc::NodeStatus::True) o.first = true;
        if (n.status == pc::NodeStatus::False) o.second = true;
      }
    }
    for (const auto& [key, o] : outcomes) {
      if (options_.priorities) {
        if (o.first)
          out.priorities.push_back({key.first, key.second, Priority::High});
        else if (o.second)
          out.priorities.push_back({key.first, key.second, Priority::Low});
      }
      if (options_.false_pair_prunes && o.second && !o.first)
        out.pair_prunes.push_back({key.first, key.second});
    }
  }

  if (options_.thresholds) {
    std::vector<const ExperimentRecord*> ptrs;
    ptrs.reserve(records.size());
    for (const auto& r : records) ptrs.push_back(&r);
    add_thresholds(ptrs, hyps, out);
  }

  // Dedup prunes accumulated across records.
  std::sort(out.prunes.begin(), out.prunes.end(),
            [](const pc::PruneDirective& a, const pc::PruneDirective& b) {
              return std::tie(a.hypothesis, a.resource_prefix) <
                     std::tie(b.hypothesis, b.resource_prefix);
            });
  out.prunes.erase(std::unique(out.prunes.begin(), out.prunes.end()), out.prunes.end());
  return out;
}

pc::DirectiveSet DirectiveGenerator::from_records_weighted(
    const std::vector<ExperimentRecord>& records, const WeightedCombineOptions& combine,
    const pc::HypothesisSet& hyps) const {
  std::vector<pc::DirectiveSet> sets;
  sets.reserve(records.size());
  for (const ExperimentRecord& rec : records) sets.push_back(from_record(rec, hyps));
  return combine_weighted(sets, combine);
}

}  // namespace histpc::history
