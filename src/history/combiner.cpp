#include "history/combiner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace histpc::history {

using pc::DirectiveSet;
using pc::Priority;

namespace {

void sort_unique_prunes(std::vector<pc::PruneDirective>& prunes) {
  std::sort(prunes.begin(), prunes.end(),
            [](const pc::PruneDirective& x, const pc::PruneDirective& y) {
              return std::tie(x.hypothesis, x.resource_prefix) <
                     std::tie(y.hypothesis, y.resource_prefix);
            });
  prunes.erase(std::unique(prunes.begin(), prunes.end()), prunes.end());
}

}  // namespace

DirectiveSet combine(const DirectiveSet& a, const DirectiveSet& b, CombineMode mode) {
  DirectiveSet out;

  // Non-priority directives: concatenate, dedup prunes.
  out.prunes = a.prunes;
  out.prunes.insert(out.prunes.end(), b.prunes.begin(), b.prunes.end());
  sort_unique_prunes(out.prunes);
  out.thresholds = a.thresholds;
  out.thresholds.insert(out.thresholds.end(), b.thresholds.begin(), b.thresholds.end());
  // Deterministic regardless of argument order: duplicate thresholds keep
  // the max (conservative), with a warning when a and b disagree. Without
  // this, threshold_for's first-match rule silently let `a` win.
  out.resolve_threshold_conflicts();
  out.maps = a.maps;
  out.maps.insert(out.maps.end(), b.maps.begin(), b.maps.end());

  struct Outcome {
    bool high_a = false, low_a = false, high_b = false, low_b = false;
  };
  std::map<std::pair<std::string, std::string>, Outcome> pairs;
  for (const auto& p : a.priorities) {
    auto& o = pairs[{p.hypothesis, p.focus}];
    if (p.priority == Priority::High) o.high_a = true;
    if (p.priority == Priority::Low) o.low_a = true;
  }
  for (const auto& p : b.priorities) {
    auto& o = pairs[{p.hypothesis, p.focus}];
    if (p.priority == Priority::High) o.high_b = true;
    if (p.priority == Priority::Low) o.low_b = true;
  }

  for (const auto& [key, o] : pairs) {
    Priority result = Priority::Medium;
    if (mode == CombineMode::Intersection) {
      if (o.high_a && o.high_b) result = Priority::High;
      else if (o.low_a && o.low_b) result = Priority::Low;
    } else {  // Union
      if (o.high_a || o.high_b) result = Priority::High;
      else if (o.low_a || o.low_b) result = Priority::Low;
    }
    if (result != Priority::Medium)
      out.priorities.push_back({key.first, key.second, result});
  }
  return out;
}

DirectiveSet combine_runs(const std::vector<DirectiveSet>& sets, CombineMode mode) {
  DirectiveSet out;
  const std::size_t n = sets.size();
  if (n == 0) return out;

  for (const DirectiveSet& s : sets) {
    out.prunes.insert(out.prunes.end(), s.prunes.begin(), s.prunes.end());
    out.thresholds.insert(out.thresholds.end(), s.thresholds.begin(), s.thresholds.end());
    out.maps.insert(out.maps.end(), s.maps.begin(), s.maps.end());
    // pair_prunes deliberately dropped, as in combine(): an exact-pair
    // prune harvested from one run is too aggressive to survive pooling.
  }
  sort_unique_prunes(out.prunes);
  out.resolve_threshold_conflicts();

  // Count, per (hypothesis : focus), how many runs voted High / Low.
  // "High in all" means all n runs, so a pair one run never tested cannot
  // reach intersection-High — identical to the pairwise operator for n=2.
  struct Votes {
    std::size_t high = 0, low = 0;
  };
  std::map<std::pair<std::string, std::string>, Votes> pairs;
  for (const DirectiveSet& s : sets) {
    for (const auto& p : s.priorities) {
      auto& v = pairs[{p.hypothesis, p.focus}];
      if (p.priority == Priority::High) ++v.high;
      if (p.priority == Priority::Low) ++v.low;
    }
  }
  for (const auto& [key, v] : pairs) {
    Priority result = Priority::Medium;
    if (mode == CombineMode::Intersection) {
      if (v.high == n) result = Priority::High;
      else if (v.low == n) result = Priority::Low;
    } else {  // Union
      if (v.high > 0) result = Priority::High;
      else if (v.low > 0) result = Priority::Low;
    }
    if (result != Priority::Medium)
      out.priorities.push_back({key.first, key.second, result});
  }
  return out;
}

DirectiveSet combine_weighted(const std::vector<DirectiveSet>& sets,
                              const WeightedCombineOptions& options) {
  DirectiveSet out;
  const std::size_t n = sets.size();
  if (n == 0) return out;

  std::vector<double> weight(n, 1.0);
  if (options.half_life_runs > 0.0)
    for (std::size_t i = 0; i < n; ++i)
      weight[i] = std::pow(0.5, static_cast<double>(n - 1 - i) / options.half_life_runs);
  double total_weight = 0.0;
  for (double w : weight) total_weight += w;

  // Weighted votes per priority pair and weighted support per prune. A set
  // listing the same directive twice still votes its weight once.
  struct Votes {
    double high = 0.0, low = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Votes> pairs;
  std::map<std::pair<std::string, std::string>, double> prune_support;
  std::map<std::pair<std::string, std::string>, double> pair_prune_support;
  for (std::size_t i = 0; i < n; ++i) {
    const DirectiveSet& s = sets[i];
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto& p : s.priorities) {
      if (!seen.insert({p.hypothesis, p.focus}).second) continue;
      auto& v = pairs[{p.hypothesis, p.focus}];
      if (p.priority == Priority::High) v.high += weight[i];
      if (p.priority == Priority::Low) v.low += weight[i];
    }
    seen.clear();
    for (const auto& p : s.prunes)
      if (seen.insert({p.hypothesis, p.resource_prefix}).second)
        prune_support[{p.hypothesis, p.resource_prefix}] += weight[i];
    seen.clear();
    for (const auto& p : s.pair_prunes)
      if (seen.insert({p.hypothesis, p.focus}).second)
        pair_prune_support[{p.hypothesis, p.focus}] += weight[i];

    out.thresholds.insert(out.thresholds.end(), s.thresholds.begin(), s.thresholds.end());
    for (const auto& m : s.maps) {
      const bool dup = std::any_of(out.maps.begin(), out.maps.end(), [&](const auto& e) {
        return e.from == m.from && e.to == m.to;
      });
      if (!dup) out.maps.push_back(m);
    }
  }
  out.resolve_threshold_conflicts();

  for (const auto& [key, support] : prune_support)
    if (support >= options.prune_fraction * total_weight)
      out.prunes.push_back({key.first, key.second});
  for (const auto& [key, support] : pair_prune_support)
    if (support >= options.prune_fraction * total_weight)
      out.pair_prunes.push_back({key.first, key.second});

  for (const auto& [key, v] : pairs) {
    const double denom = v.high + v.low;
    if (denom <= 0.0) continue;
    Priority result = Priority::Medium;
    if (v.high >= options.high_fraction * denom) result = Priority::High;
    else if (v.low >= options.low_fraction * denom) result = Priority::Low;
    if (result != Priority::Medium)
      out.priorities.push_back({key.first, key.second, result});
  }
  return out;
}

}  // namespace histpc::history
