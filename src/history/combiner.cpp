#include "history/combiner.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace histpc::history {

using pc::DirectiveSet;
using pc::Priority;

DirectiveSet combine(const DirectiveSet& a, const DirectiveSet& b, CombineMode mode) {
  DirectiveSet out;

  // Non-priority directives: concatenate, dedup prunes.
  out.prunes = a.prunes;
  out.prunes.insert(out.prunes.end(), b.prunes.begin(), b.prunes.end());
  std::sort(out.prunes.begin(), out.prunes.end(),
            [](const pc::PruneDirective& x, const pc::PruneDirective& y) {
              return std::tie(x.hypothesis, x.resource_prefix) <
                     std::tie(y.hypothesis, y.resource_prefix);
            });
  out.prunes.erase(std::unique(out.prunes.begin(), out.prunes.end()), out.prunes.end());
  out.thresholds = a.thresholds;
  out.thresholds.insert(out.thresholds.end(), b.thresholds.begin(), b.thresholds.end());
  // Deterministic regardless of argument order: duplicate thresholds keep
  // the max (conservative), with a warning when a and b disagree. Without
  // this, threshold_for's first-match rule silently let `a` win.
  out.resolve_threshold_conflicts();
  out.maps = a.maps;
  out.maps.insert(out.maps.end(), b.maps.begin(), b.maps.end());

  struct Outcome {
    bool high_a = false, low_a = false, high_b = false, low_b = false;
  };
  std::map<std::pair<std::string, std::string>, Outcome> pairs;
  for (const auto& p : a.priorities) {
    auto& o = pairs[{p.hypothesis, p.focus}];
    if (p.priority == Priority::High) o.high_a = true;
    if (p.priority == Priority::Low) o.low_a = true;
  }
  for (const auto& p : b.priorities) {
    auto& o = pairs[{p.hypothesis, p.focus}];
    if (p.priority == Priority::High) o.high_b = true;
    if (p.priority == Priority::Low) o.low_b = true;
  }

  for (const auto& [key, o] : pairs) {
    Priority result = Priority::Medium;
    if (mode == CombineMode::Intersection) {
      if (o.high_a && o.high_b) result = Priority::High;
      else if (o.low_a && o.low_b) result = Priority::Low;
    } else {  // Union
      if (o.high_a || o.high_b) result = Priority::High;
      else if (o.low_a || o.low_b) result = Priority::Low;
    }
    if (result != Priority::Medium)
      out.priorities.push_back({key.first, key.second, result});
  }
  return out;
}

}  // namespace histpc::history
