// Combining search directives from multiple previous runs (Section 4.3):
//
//  * intersection (A ∩ B): high priority only for pairs that tested true
//    in BOTH runs; low only for pairs false in both.
//  * union (A ∪ B): high for pairs true in EITHER run; low for pairs false
//    in either run that were not true in the other.
//
// Combination operates on the priority directives; prunes, thresholds and
// maps are concatenated (prunes deduped).
#pragma once

#include "pc/directives.h"

namespace histpc::history {

enum class CombineMode { Intersection, Union };

pc::DirectiveSet combine(const pc::DirectiveSet& a, const pc::DirectiveSet& b,
                         CombineMode mode);

}  // namespace histpc::history
