// Combining search directives from multiple previous runs (Section 4.3):
//
//  * intersection (A ∩ B): high priority only for pairs that tested true
//    in BOTH runs; low only for pairs false in both.
//  * union (A ∪ B): high for pairs true in EITHER run; low for pairs false
//    in either run that were not true in the other.
//
// Combination operates on the priority directives; prunes, thresholds and
// maps are concatenated (prunes deduped).
//
// Beyond the paper's pairwise operators this header provides the N-run
// generalizations used at fleet scale:
//
//  * combine_runs — intersection / union over any number of runs (high in
//    ALL / high in ANY). Bit-identical to combine(a, b, mode) for N = 2.
//  * combine_weighted — recency- and frequency-weighted voting: each run
//    carries an exponentially decayed weight (newest = 1), and a priority
//    or prune directive survives when its weighted support clears a
//    configurable fraction of the vote. Ties break toward High / keeping
//    the directive, and all outputs are emitted in sorted order, so the
//    result is deterministic in the input order (which callers fix as
//    oldest → newest; see select_similar_runs).
#pragma once

#include <cstddef>
#include <vector>

#include "pc/directives.h"

namespace histpc::history {

enum class CombineMode { Intersection, Union };

pc::DirectiveSet combine(const pc::DirectiveSet& a, const pc::DirectiveSet& b,
                         CombineMode mode);

/// N-run intersection/union. Intersection: a pair is High only when High
/// in every run, Low only when Low in every run. Union: High when High
/// anywhere, else Low when Low anywhere. Prunes are concatenated and
/// deduped, thresholds resolved conservatively (max wins), maps
/// concatenated; pair prunes are dropped, exactly as combine() drops them.
/// combine_runs({a, b}, mode) == combine(a, b, mode), field for field.
pc::DirectiveSet combine_runs(const std::vector<pc::DirectiveSet>& sets, CombineMode mode);

struct WeightedCombineOptions {
  /// Runs this far before the newest carry half its weight. The newest run
  /// always weighs 1; <= 0 disables decay (pure frequency voting).
  double half_life_runs = 8.0;
  /// A pair is High when the High vote reaches this fraction of the
  /// (High + Low) weight on that pair; ties (exactly the fraction) stay
  /// High — recent evidence of a real bottleneck should not be discarded
  /// by an equally weighted old refutation.
  double high_fraction = 0.5;
  /// Otherwise the pair is Low when the Low vote reaches this fraction of
  /// the (High + Low) weight; below both fractions no directive is emitted.
  double low_fraction = 0.5;
  /// A prune (subtree or pair) survives when the weight of the runs
  /// proposing it reaches this fraction of the total weight — one ancient
  /// run claiming a region is negligible should not prune it forever.
  double prune_fraction = 0.5;
};

/// Weighted N-run aggregation over `sets` ordered oldest → newest. Run i
/// of n weighs 2^-((n-1-i)/half_life_runs). Priorities and prunes are
/// weighted votes (see WeightedCombineOptions); pair prunes survive by the
/// same rule as subtree prunes; thresholds are concatenated then resolved
/// conservatively; maps are concatenated oldest → newest keeping the first
/// occurrence of each (from, to). Deterministic: every output vector is
/// sorted.
pc::DirectiveSet combine_weighted(const std::vector<pc::DirectiveSet>& sets,
                                  const WeightedCombineOptions& options = {});

}  // namespace histpc::history
