// Cross-run analyses reported in the paper:
//  * Table 4 — similarity of priority directives extracted from different
//    code versions (how many are unique to one version, shared by two, by
//    all three, ...).
//  * Section 4.3 — overlap of the bottleneck sets different directed runs
//    diagnose.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "pc/consultant.h"
#include "pc/directives.h"

namespace histpc::history {

/// Membership masks: bit i set = the item appears in input i. For three
/// inputs A, B, C the masks 1, 2, 4 are "only A/B/C", 3/5/6 the pairs, and
/// 7 "all three".
struct MembershipCounts {
  std::map<unsigned, std::size_t> counts;
  std::size_t total = 0;

  std::size_t count_for(unsigned mask) const {
    auto it = counts.find(mask);
    return it == counts.end() ? 0 : it->second;
  }
};

struct PrioritySimilarity {
  MembershipCounts high;  ///< high-priority directives
  MembershipCounts low;   ///< low-priority directives
  MembershipCounts both;  ///< union of high and low
};

/// Compare priority directives across directive sets. A directive is keyed
/// by (hypothesis, focus, level); mapping should have been applied first
/// so foci are in a common namespace.
PrioritySimilarity priority_similarity(const std::vector<pc::DirectiveSet>& sets);

/// Compare bottleneck sets (keyed by hypothesis + focus) across runs.
MembershipCounts bottleneck_overlap(
    const std::vector<std::vector<pc::BottleneckReport>>& runs);

/// Human-readable label for a mask: "A only", "A,B", "A,B,C" ... given the
/// per-input names.
std::string mask_label(unsigned mask, const std::vector<std::string>& names);

/// The evaluation reference set for a directed run: the base run's
/// bottlenecks minus those a directive set deliberately excludes by
/// pruning (e.g. redundant /Machine foci when processes and nodes map
/// one-to-one). The paper measures time-to-find against "the bottlenecks
/// in that set"; pairs the directives rule out by design are not misses.
/// Mappings in `directives` are applied (to a copy) before testing.
std::vector<pc::BottleneckReport> filter_pruned(
    const std::vector<pc::BottleneckReport>& reference, const pc::DirectiveSet& directives,
    const resources::ResourceDb& db);

/// Keep only clearly significant bottlenecks: measured fraction at least
/// `min_fraction`. Pairs sitting exactly at the hypothesis threshold flap
/// between runs with the measurement window's phase (the paper's runs of C
/// agreed on 113 of 115 bottlenecks for the same reason); evaluation
/// reference sets should exclude those marginal pairs.
std::vector<pc::BottleneckReport> significant_bottlenecks(
    const std::vector<pc::BottleneckReport>& bottlenecks, double min_fraction);

}  // namespace histpc::history
