#include "history/postmortem.h"

#include <deque>
#include <optional>
#include <set>

#include "util/strings.h"

namespace histpc::history {

using pc::DiagnosisResult;
using pc::Hypothesis;
using pc::NodeStatus;
using resources::Focus;

namespace {

/// Apply a hypothesis's implicit SyncObject scope to a focus; nullopt when
/// they are disjoint (mirrors the Performance Consultant's probe focus).
std::optional<Focus> scoped_focus(const metrics::TraceView& view, const Hypothesis& hyp,
                                  const Focus& focus) {
  if (hyp.sync_scope.empty()) return focus;
  const int sync_idx = view.resources().hierarchy_index(resources::kSyncObjectHierarchy);
  if (sync_idx < 0 || static_cast<std::size_t>(sync_idx) >= focus.size()) return focus;
  const std::string& part = focus.part(static_cast<std::size_t>(sync_idx));
  if (util::is_path_prefix(hyp.sync_scope, part)) return focus;
  if (util::is_path_prefix(part, hyp.sync_scope))
    return focus.with_part(static_cast<std::size_t>(sync_idx), hyp.sync_scope);
  return std::nullopt;
}

}  // namespace

DiagnosisResult postmortem_diagnose(const metrics::TraceView& view,
                                    const PostmortemOptions& options) {
  const auto& hyps = options.hypotheses;
  const double duration = view.trace().duration;

  DiagnosisResult result;
  std::set<std::pair<int, std::string>> seen;
  std::deque<std::pair<int, Focus>> pending;

  const Focus whole = Focus::whole_program(view.resources());
  for (int root : hyps.roots()) pending.emplace_back(root, whole);

  auto threshold_for = [&](int hyp) {
    return options.threshold_override > 0 ? options.threshold_override
                                          : hyps.at(hyp).default_threshold;
  };

  while (!pending.empty()) {
    auto [hyp, focus] = std::move(pending.front());
    pending.pop_front();
    const std::string focus_name = focus.name();
    if (!seen.emplace(hyp, focus_name).second) continue;

    pc::NodeSnapshot snap;
    snap.hypothesis = hyps.at(hyp).name;
    snap.focus = focus_name;

    if (seen.size() > options.max_pairs) {
      snap.status = NodeStatus::NeverRan;
      result.nodes.push_back(std::move(snap));
      continue;
    }

    const auto probe = scoped_focus(view, hyps.at(hyp), focus);
    if (!probe) continue;  // incompatible pair: the online PC never creates it

    // Foci recur across hypotheses during expansion; the cached compiled
    // filter avoids recompiling one per (hypothesis, focus) pair.
    const double fraction =
        view.fraction(hyps.at(hyp).metric, view.compiled(*probe), 0.0, duration);
    snap.fraction = fraction;
    snap.conclude_time = 0.0;
    ++result.stats.pairs_tested;

    if (fraction >= threshold_for(hyp)) {
      snap.status = NodeStatus::True;
      result.bottlenecks.push_back({snap.hypothesis, focus_name, 0.0, fraction});
      for (Focus& child : focus.refinements(view.resources()))
        pending.emplace_back(hyp, std::move(child));
      for (int child_hyp : hyps.at(hyp).children) pending.emplace_back(child_hyp, focus);
    } else {
      snap.status = NodeStatus::False;
    }
    result.nodes.push_back(std::move(snap));
  }

  result.stats.nodes_created = result.nodes.size();
  result.stats.bottlenecks = result.bottlenecks.size();
  result.stats.end_time = 0.0;
  return result;
}

ExperimentRecord postmortem_record(std::string app, std::string version,
                                   const metrics::TraceView& view,
                                   const PostmortemOptions& options) {
  const DiagnosisResult result = postmortem_diagnose(view, options);
  const double threshold =
      options.threshold_override > 0 ? options.threshold_override : 0.20;
  return make_record(std::move(app), std::move(version), view, result, threshold);
}

}  // namespace histpc::history
