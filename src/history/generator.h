// DirectiveGenerator: harvest search directives from experiment records
// (Section 3 of the paper).
//
//  * General prunes — environment rules, not application-specific: the
//    SyncObject hierarchy is pruned from every non-synchronization
//    hypothesis, and the Machine hierarchy is pruned entirely when
//    processes and nodes map one-to-one (MPI-1 static process model).
//  * Historic prunes — application-specific: code resources whose measured
//    share of execution time was negligible in previous runs.
//  * Priorities — high for pairs that tested true in at least one previous
//    execution, low for pairs that tested false in all of them, medium
//    otherwise (implicitly: no directive emitted).
//  * Thresholds — the level that would report every historically
//    significant region, with a safety margin.
#pragma once

#include <vector>

#include "history/combiner.h"
#include "history/experiment.h"
#include "pc/directives.h"
#include "pc/hypothesis.h"

namespace histpc::history {

struct GeneratorOptions {
  bool general_prunes = true;
  bool historic_prunes = true;
  /// Emit pair prunes for (hypothesis : focus) pairs that tested false in
  /// every previous run. Aggressive: the paper's combined prunes+priorities
  /// variant deliberately omits these so new behaviours cannot be missed.
  bool false_pair_prunes = false;
  bool priorities = true;
  bool thresholds = false;  ///< off by default: Table 1 used fixed thresholds

  /// Historic prune cutoff: code resources below this fraction of
  /// execution time are pruned for every hypothesis.
  double small_code_fraction = 0.01;
  /// Threshold harvesting: regions at or above this fraction count as
  /// significant...
  double significance_floor = 0.10;
  /// ...and the generated threshold is margin * (smallest significant
  /// fraction), clamped to [0.05, 0.5].
  double threshold_margin = 0.95;
};

class DirectiveGenerator {
 public:
  explicit DirectiveGenerator(GeneratorOptions options = {}) : options_(options) {}

  /// Harvest directives from one previous execution.
  pc::DirectiveSet from_record(const ExperimentRecord& record,
                               const pc::HypothesisSet& hyps = pc::HypothesisSet::standard()) const;

  /// Harvest from several runs: a pair is high priority if true in at
  /// least one run and low only if false in every run it appeared in.
  /// Prunes and thresholds use the union/most conservative values.
  pc::DirectiveSet from_records(const std::vector<ExperimentRecord>& records,
                                const pc::HypothesisSet& hyps =
                                    pc::HypothesisSet::standard()) const;

  /// Harvest each record separately and aggregate with combine_weighted:
  /// `records` ordered oldest → newest, recent runs dominate old ones
  /// (exponential decay), and a directive needs weighted-majority support
  /// to survive. The fleet-scale alternative to from_records' pooled
  /// union when hundreds of runs of varying age are available.
  pc::DirectiveSet from_records_weighted(const std::vector<ExperimentRecord>& records,
                                         const WeightedCombineOptions& combine = {},
                                         const pc::HypothesisSet& hyps =
                                             pc::HypothesisSet::standard()) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  void add_general_prunes(const ExperimentRecord& record, const pc::HypothesisSet& hyps,
                          pc::DirectiveSet& out) const;
  void add_historic_prunes(const ExperimentRecord& record, pc::DirectiveSet& out) const;
  void add_thresholds(const std::vector<const ExperimentRecord*>& records,
                      const pc::HypothesisSet& hyps, pc::DirectiveSet& out) const;

  GeneratorOptions options_;
};

}  // namespace histpc::history
