#include "history/similarity.h"

#include <algorithm>
#include <cmath>

#include "history/store.h"  // run_id_natural_less
#include "util/strings.h"

namespace histpc::history {

namespace {

/// 1 when both sides agree (including both-empty), graded by edit distance
/// when both are known, 0 when only one side knows the field.
double field_similarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return util::name_similarity(a, b);
}

/// min/max ratio in [0,1]; 1 when both are zero (both unknown).
double ratio_similarity(double a, double b) {
  if (a <= 0.0 && b <= 0.0) return 1.0;
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return std::min(a, b) / std::max(a, b);
}

/// Cosine similarity of the two sparse code-usage vectors. Empty profiles
/// on both sides count as a match (legacy records); one-sided emptiness
/// scores 0.
double usage_similarity(const std::map<std::string, double>& a,
                        const std::map<std::string, double>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [name, va] : a) {
    na += va * va;
    if (auto it = b.find(name); it != b.end()) dot += va * it->second;
  }
  for (const auto& [name, vb] : b) nb += vb * vb;
  if (na <= 0.0 || nb <= 0.0) return a == b ? 1.0 : 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

double run_similarity(const ExperimentRecord& reference, const ExperimentRecord& candidate,
                      const SimilarityWeights& w) {
  if (reference.app != candidate.app) return 0.0;
  const double total = w.version + w.machine + w.scenario + w.scale + w.usage;
  if (total <= 0.0) return 0.0;
  double score = 0.0;
  score += w.version * field_similarity(reference.version, candidate.version);
  score += w.machine * (reference.machine == candidate.machine ? 1.0 : 0.0);
  score += w.scenario * field_similarity(reference.scenario, candidate.scenario);
  score += w.scale * 0.5 *
           (ratio_similarity(reference.nranks, candidate.nranks) +
            ratio_similarity(reference.duration, candidate.duration));
  score += w.usage * usage_similarity(reference.code_usage, candidate.code_usage);
  return score / total;
}

std::vector<SelectedRun> select_similar_runs(const std::vector<ExperimentRecord>& candidates,
                                             const ExperimentRecord& reference,
                                             std::size_t max_runs, double min_similarity,
                                             const SimilarityWeights& weights) {
  std::vector<SelectedRun> scored;
  scored.reserve(candidates.size());
  for (const ExperimentRecord& rec : candidates) {
    const double s = run_similarity(reference, rec, weights);
    if (s >= min_similarity && s > 0.0) scored.push_back({rec.run_id, s});
  }
  // Best first; equal scores break toward the smaller run_id so selection
  // is independent of the candidates' iteration order.
  std::sort(scored.begin(), scored.end(), [](const SelectedRun& a, const SelectedRun& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.run_id < b.run_id;
  });
  if (scored.size() > max_runs) scored.resize(max_runs);
  // Oldest first for recency weighting downstream.
  std::sort(scored.begin(), scored.end(), [](const SelectedRun& a, const SelectedRun& b) {
    return run_id_natural_less(a.run_id, b.run_id);
  });
  return scored;
}

}  // namespace histpc::history
