#include "history/experiment.h"

#include <set>

#include "telemetry/perf_record.h"
#include "util/strings.h"

namespace histpc::history {

using util::Json;

namespace {

Json node_to_json(const pc::NodeSnapshot& n) {
  Json j = Json::object();
  j["hypothesis"] = n.hypothesis;
  j["focus"] = n.focus;
  j["status"] = pc::node_status_name(n.status);
  j["priority"] = pc::priority_name(n.priority);
  j["conclude_time"] = n.conclude_time;
  j["fraction"] = n.fraction;
  return j;
}

pc::NodeSnapshot node_from_json(const Json& j) {
  pc::NodeSnapshot n;
  n.hypothesis = j.at("hypothesis").as_string();
  n.focus = j.at("focus").as_string();
  const std::string status = j.at("status").as_string();
  for (pc::NodeStatus s : {pc::NodeStatus::Pending, pc::NodeStatus::Active, pc::NodeStatus::True,
                           pc::NodeStatus::False, pc::NodeStatus::Pruned,
                           pc::NodeStatus::NeverRan}) {
    if (status == pc::node_status_name(s)) n.status = s;
  }
  if (auto p = pc::priority_from_name(j.at("priority").as_string())) n.priority = *p;
  n.conclude_time = j.at("conclude_time").as_double();
  n.fraction = j.at("fraction").as_double();
  return n;
}

}  // namespace

Json ExperimentRecord::to_json() const {
  Json j = Json::object();
  j["app"] = app;
  j["version"] = version;
  j["run_id"] = run_id;
  j["machine"] = machine;
  j["scenario"] = scenario;
  j["duration"] = duration;
  j["nranks"] = nranks;
  j["machine_process_one_to_one"] = machine_process_one_to_one;
  j["threshold_used"] = threshold_used;
  j["pairs_tested"] = pairs_tested;
  j["resources"] = resources.to_json();

  Json nodes_json = Json::array();
  for (const auto& n : nodes) nodes_json.push_back(node_to_json(n));
  j["nodes"] = std::move(nodes_json);

  Json bn = Json::array();
  for (const auto& b : bottlenecks) {
    Json e = Json::object();
    e["hypothesis"] = b.hypothesis;
    e["focus"] = b.focus;
    e["t_found"] = b.t_found;
    e["fraction"] = b.fraction;
    bn.push_back(std::move(e));
  }
  j["bottlenecks"] = std::move(bn);

  Json usage = Json::object();
  for (const auto& [res, frac] : code_usage) usage[res] = frac;
  j["code_usage"] = std::move(usage);
  return j;
}

ExperimentRecord ExperimentRecord::from_json(const Json& j) {
  ExperimentRecord r;
  r.app = j.at("app").as_string();
  r.version = j.at("version").as_string();
  r.run_id = j.at("run_id").as_string();
  // Absent from records written before the fleet-scale store existed.
  r.machine = j.get_or("machine", std::string());
  r.scenario = j.get_or("scenario", std::string());
  r.duration = j.at("duration").as_double();
  r.nranks = static_cast<int>(j.at("nranks").as_int());
  r.machine_process_one_to_one = j.at("machine_process_one_to_one").as_bool();
  r.threshold_used = j.get_or("threshold_used", 0.0);
  r.pairs_tested = static_cast<std::size_t>(j.get_or("pairs_tested", 0.0));
  r.resources = resources::ResourceDb::from_json(j.at("resources"));
  for (const auto& n : j.at("nodes").as_array()) r.nodes.push_back(node_from_json(n));
  for (const auto& b : j.at("bottlenecks").as_array()) {
    pc::BottleneckReport br;
    br.hypothesis = b.at("hypothesis").as_string();
    br.focus = b.at("focus").as_string();
    br.t_found = b.at("t_found").as_double();
    br.fraction = b.at("fraction").as_double();
    r.bottlenecks.push_back(std::move(br));
  }
  for (const auto& [res, frac] : j.at("code_usage").as_object())
    r.code_usage[res] = frac.as_double();
  return r;
}

ExperimentRecord make_record(std::string app, std::string version,
                             const metrics::TraceView& view,
                             const pc::DiagnosisResult& result, double threshold_used) {
  ExperimentRecord r;
  r.app = std::move(app);
  r.version = std::move(version);
  r.machine = telemetry::machine_name();
  const auto& trace = view.trace();
  r.duration = trace.duration;
  r.nranks = trace.num_ranks();
  r.threshold_used = threshold_used;
  r.pairs_tested = result.stats.pairs_tested;
  r.nodes = result.nodes;
  r.bottlenecks = result.bottlenecks;

  r.resources = view.resources();

  // Postmortem code usage over the full run: fraction of execution time
  // (normalized per selected process) attributable to each module/function.
  const auto& code = view.resources().hierarchy(resources::kCodeHierarchy);
  for (resources::ResourceId id : code.preorder()) {
    if (id == code.root()) continue;
    resources::Focus f = resources::Focus::whole_program(view.resources());
    int code_idx = view.resources().hierarchy_index(resources::kCodeHierarchy);
    f = f.with_part(static_cast<std::size_t>(code_idx), code.node(id).full_name);
    r.code_usage[code.node(id).full_name] =
        view.fraction(metrics::MetricKind::ExecTime, f, 0.0, trace.duration);
  }

  // One process per node and vice versa? Then the Machine hierarchy is
  // redundant with Process (the paper's MPI-1 example).
  std::set<int> used_nodes(trace.machine.rank_to_node.begin(), trace.machine.rank_to_node.end());
  r.machine_process_one_to_one =
      used_nodes.size() == trace.machine.rank_to_node.size() &&
      static_cast<int>(used_nodes.size()) == trace.machine.num_nodes();
  return r;
}

}  // namespace histpc::history
