#include "history/report.h"

#include <algorithm>
#include <sstream>

#include "history/generator.h"
#include "resources/focus.h"
#include "util/strings.h"

namespace histpc::history {

namespace {

/// Number of focus parts constrained below their hierarchy roots.
int constrained_parts(const std::string& focus_name, std::string* only_part = nullptr) {
  std::string_view inner = focus_name;
  if (!inner.empty() && inner.front() == '<' && inner.back() == '>')
    inner = inner.substr(1, inner.size() - 2);
  int constrained = 0;
  for (auto part : util::split_view(inner, ',')) {
    if (part.find('/', 1) != std::string_view::npos) {
      ++constrained;
      if (only_part) *only_part = std::string(util::trim(part));
    }
  }
  return constrained;
}

}  // namespace

std::string tuning_report(const ExperimentRecord& record, const ReportOptions& options) {
  std::ostringstream os;
  const char* h1 = options.markdown ? "# " : "== ";
  const char* h2 = options.markdown ? "## " : "-- ";
  const char* bullet = options.markdown ? "* " : "  - ";

  os << h1 << "Tuning report: " << record.app << " version " << record.version;
  if (!record.run_id.empty()) os << " (" << record.run_id << ")";
  os << "\n\n"
     << record.nranks << " processes, " << util::fmt_double(record.duration, 1)
     << "s execution, " << record.pairs_tested << " hypothesis/focus pairs tested at a "
     << util::fmt_percent(record.threshold_used, 0) << " threshold.\n\n";

  // Headline: the whole-program verdict per hypothesis.
  os << h2 << "Where the time goes\n\n";
  bool any_headline = false;
  for (const auto& n : record.nodes) {
    if (constrained_parts(n.focus) != 0 || n.conclude_time < 0) continue;
    os << bullet << n.hypothesis << ": " << util::fmt_percent(n.fraction, 1) << " — "
       << (n.status == pc::NodeStatus::True ? "significant" : "not significant") << "\n";
    any_headline = true;
  }
  if (!any_headline) os << bullet << "(no whole-program conclusions recorded)\n";
  os << "\n";

  // Dominant bottlenecks: the most refined true pairs, biggest first.
  std::vector<const pc::BottleneckReport*> sorted;
  for (const auto& b : record.bottlenecks) sorted.push_back(&b);
  std::stable_sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->fraction > b->fraction;
  });
  os << h2 << "Dominant bottlenecks\n\n";
  std::size_t emitted = 0;
  for (const auto* b : sorted) {
    if (constrained_parts(b->focus) < 2) continue;  // broad views repeat the headline
    os << bullet << util::fmt_percent(b->fraction, 1) << "  " << b->hypothesis << " : "
       << b->focus << "\n";
    if (++emitted >= options.max_bottlenecks) break;
  }
  if (emitted == 0) os << bullet << "(no refined bottlenecks; the search may have been cut short)\n";
  os << "\n";

  // Per-hierarchy hot spots: true pairs constrained in exactly one
  // hierarchy, so the reader sees "which code", "which process", "which
  // message" independently.
  os << h2 << "Hot spots by view\n\n";
  for (std::string_view hierarchy : {"/Code", "/Process", "/Machine", "/SyncObject"}) {
    std::vector<std::pair<double, std::string>> spots;
    for (const auto& b : record.bottlenecks) {
      std::string only;
      if (constrained_parts(b.focus, &only) != 1) continue;
      if (!util::is_path_prefix(hierarchy, only)) continue;
      spots.emplace_back(b.fraction, only + " (" + b.hypothesis + ")");
    }
    std::stable_sort(spots.begin(), spots.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    os << bullet << hierarchy.substr(1) << ":";
    if (spots.empty()) {
      os << " none\n";
    } else {
      os << "\n";
      std::size_t count = 0;
      for (const auto& [frac, label] : spots) {
        os << "  " << bullet << util::fmt_percent(frac, 1) << "  " << label << "\n";
        if (++count >= options.max_bottlenecks) break;
      }
    }
  }
  os << "\n";

  // What this run teaches the next one.
  DirectiveGenerator generator;
  const pc::DirectiveSet directives = generator.from_record(record);
  GeneratorOptions threshold_opts;
  threshold_opts.general_prunes = threshold_opts.historic_prunes = false;
  threshold_opts.priorities = false;
  threshold_opts.thresholds = true;
  const pc::DirectiveSet thresholds =
      DirectiveGenerator(threshold_opts).from_record(record);
  os << h2 << "Knowledge harvested for the next diagnosis\n\n"
     << bullet << directives.priorities.size() << " priority directives ("
     << std::count_if(directives.priorities.begin(), directives.priorities.end(),
                      [](const auto& p) { return p.priority == pc::Priority::High; })
     << " high)\n"
     << bullet << directives.prunes.size() << " pruning directives\n";
  for (const auto& t : thresholds.thresholds)
    os << bullet << "suggested threshold for " << t.hypothesis << ": "
       << util::fmt_percent(t.threshold, 1) << "\n";
  return os.str();
}

}  // namespace histpc::history
