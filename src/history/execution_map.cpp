#include "history/execution_map.h"

#include <sstream>

namespace histpc::history {

using resources::ResourceDb;

ExecutionMap build_execution_map(const ResourceDb& first, const ResourceDb& second) {
  ExecutionMap map;
  for (const std::string& name : first.all_resource_names()) {
    map.combined.add_resource(name);
    map.tags[name] = second.contains(name) ? "3" : "1";
  }
  for (const std::string& name : second.all_resource_names()) {
    if (map.tags.contains(name)) continue;
    map.combined.add_resource(name);
    map.tags[name] = "2";
  }
  // Hierarchy roots exist in both by construction.
  for (std::size_t i = 0; i < map.combined.num_hierarchies(); ++i) {
    const auto& h = map.combined.hierarchy(i);
    map.tags[h.node(h.root()).full_name] = "3";
  }
  return map;
}

std::vector<std::string> ExecutionMap::unique_to(int execution) const {
  const std::string wanted = std::to_string(execution);
  std::vector<std::string> out;
  for (const std::string& name : combined.all_resource_names()) {
    auto it = tags.find(name);
    if (it != tags.end() && it->second == wanted) out.push_back(name);
  }
  return out;
}

std::string ExecutionMap::render() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < combined.num_hierarchies(); ++i) {
    os << combined.hierarchy(i).render(&tags);
    if (i + 1 < combined.num_hierarchies()) os << "\n";
  }
  return os.str();
}

}  // namespace histpc::history
