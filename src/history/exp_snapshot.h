// Binary columnar experiment records: the `histpc-exp-bin-v1` format.
//
// The JSON schema in experiment.h stays the human-readable debug format,
// the migration source, and the round-trip oracle; this format exists so a
// store holding thousands of historical runs can be queried without
// re-parsing JSON. Layout (all integers and doubles little-endian, same
// wire conventions as simmpi/trace_snapshot):
//
//   magic "HPCEXB1\n" (8 bytes)
//   u32   format version (= 1)
//   payload:
//     str app; str version; str run_id; str machine; str scenario
//     f64 duration; u32 nranks; u8 flags (bit 0 = machine_process_one_to_one)
//     f64 threshold_used; u64 pairs_tested
//     string table: u32 count; per entry: str  (all interned names below
//       are u32 indexes into this table)
//     resources: u32 num_hierarchies; per hierarchy:
//       u32 name_idx; u32 num_resources; u32 resource_idx[num_resources]
//       (full names in preorder, hierarchy root omitted — the JSON schema)
//     nodes (SoA): u64 n; u32 hyp_idx[n]; u32 focus_idx[n]; u8 status[n];
//       u8 priority[n]; f64 conclude_time[n]; f64 fraction[n]
//     bottlenecks (SoA): u64 n; u32 hyp_idx[n]; u32 focus_idx[n];
//       f64 t_found[n]; f64 fraction[n]
//     code_usage: u64 n; u32 name_idx[n]; f64 fraction[n]  (sorted by name,
//       the std::map iteration order)
//   u32   CRC-32C (Castagnoli) of the payload
//
// Strings are length-prefixed (u32 byte count, then bytes). Hypothesis and
// focus names repeat heavily across the SHG snapshot, so interning them
// through one string table keeps a record a fraction of its JSON size.
//
// Decoding is strict: bad magic, unknown version, a CRC mismatch,
// truncated or trailing bytes, out-of-range enum values and string-table
// indexes all throw ExpSnapshotError. Discovery flows (ExperimentStore
// listings) catch it and quarantine, exactly like the JSON path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "history/experiment.h"

namespace histpc::history {

inline constexpr std::string_view kExpSnapshotMagic = "HPCEXB1\n";
inline constexpr std::uint32_t kExpSnapshotVersion = 1;

/// Malformed experiment-snapshot bytes (truncation, bad magic/version, CRC
/// mismatch, invalid field values). The message names the offending field.
class ExpSnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize `record` to histpc-exp-bin-v1 bytes.
std::string encode_experiment_record(const ExperimentRecord& record);

/// Parse and validate snapshot bytes. Throws ExpSnapshotError on malformed
/// input.
ExperimentRecord decode_experiment_record(std::string_view bytes);

/// File convenience wrappers (atomic write via util::write_file).
void save_experiment_record(const ExperimentRecord& record, const std::string& path);
ExperimentRecord load_experiment_record(const std::string& path);

}  // namespace histpc::history
