#include "telemetry/event.h"

#include <algorithm>
#include <map>
#include <utility>

namespace histpc::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Instrument: return "instrument";
    case EventKind::ConcludeTrue: return "conclude_true";
    case EventKind::ConcludeFalse: return "conclude_false";
    case EventKind::Refine: return "refine";
    case EventKind::PruneHit: return "prune_hit";
    case EventKind::PrioritySeed: return "priority_seed";
    case EventKind::CostGate: return "cost_gate";
    case EventKind::ProbeInsert: return "probe_insert";
    case EventKind::ProbeRemove: return "probe_remove";
    case EventKind::PhaseBegin: return "phase_begin";
    case EventKind::PhaseEnd: return "phase_end";
  }
  return "?";
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (EventKind k : kAllEventKinds)
    if (name == event_kind_name(k)) return k;
  return std::nullopt;
}

std::optional<TraceFormat> trace_format_from_name(std::string_view name) {
  if (name == "jsonl") return TraceFormat::Jsonl;
  if (name == "chrome") return TraceFormat::Chrome;
  return std::nullopt;
}

util::Json Event::to_json() const {
  util::Json j = util::Json::object();
  j["kind"] = event_kind_name(kind);
  j["t"] = t;
  if (!hypothesis.empty()) j["hyp"] = hypothesis;
  if (!focus.empty()) j["focus"] = focus;
  if (value != 0.0) j["value"] = value;
  if (threshold != 0.0) j["threshold"] = threshold;
  if (cost != 0.0) j["cost"] = cost;
  if (!detail.empty()) j["detail"] = detail;
  return j;
}

Event Event::from_json(const util::Json& j) {
  Event e;
  const std::string& kind_name = j.at("kind").as_string();
  auto kind = event_kind_from_name(kind_name);
  if (!kind) throw util::JsonError("unknown event kind '" + kind_name + "'");
  e.kind = *kind;
  e.t = j.get_or("t", 0.0);
  e.hypothesis = j.get_or("hyp", std::string());
  e.focus = j.get_or("focus", std::string());
  e.value = j.get_or("value", 0.0);
  e.threshold = j.get_or("threshold", 0.0);
  e.cost = j.get_or("cost", 0.0);
  e.detail = j.get_or("detail", std::string());
  return e;
}

std::string to_jsonl(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += e.to_json().dump();
    out += '\n';
  }
  return out;
}

std::vector<Event> from_jsonl(std::string_view text) {
  std::vector<Event> events;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    events.push_back(Event::from_json(util::Json::parse(line)));
  }
  return events;
}

namespace {

constexpr int kSearchTrack = 0;  ///< tid for events with no hypothesis

/// Microsecond timestamps, the unit chrome://tracing expects.
double to_us(double seconds) { return seconds * 1e6; }

util::Json chrome_metadata(const char* what, int tid, const std::string& name) {
  util::Json m = util::Json::object();
  m["name"] = what;
  m["ph"] = "M";
  m["pid"] = 1;
  m["tid"] = tid;
  util::Json args = util::Json::object();
  args["name"] = name;
  m["args"] = std::move(args);
  return m;
}

}  // namespace

util::Json to_chrome_trace(const std::vector<Event>& events) {
  util::JsonArray out;

  // Track layout: tid 0 is the search itself; each hypothesis gets its own
  // track in order of first appearance.
  std::map<std::string, int> hyp_tid;
  auto track_of = [&](const Event& e) {
    if (e.hypothesis.empty()) return kSearchTrack;
    auto [it, inserted] =
        hyp_tid.emplace(e.hypothesis, static_cast<int>(hyp_tid.size()) + 1);
    (void)inserted;
    return it->second;
  };

  out.push_back(chrome_metadata("process_name", kSearchTrack, "histpc search"));
  out.push_back(chrome_metadata("thread_name", kSearchTrack, "search"));

  // Instrument -> conclude spans: ph:"X" complete events so each test shows
  // as a bar on its hypothesis track.
  std::map<std::pair<std::string, std::string>, double> open_tests;

  for (const Event& e : events) {
    const int tid = track_of(e);

    // The full payload as an instant event: lossless round trip, and every
    // decision is findable in the Perfetto query UI.
    {
      util::Json inst = util::Json::object();
      inst["name"] = event_kind_name(e.kind);
      inst["cat"] = "telemetry";
      inst["ph"] = "i";
      inst["s"] = "t";
      inst["pid"] = 1;
      inst["tid"] = tid;
      inst["ts"] = to_us(e.t);
      inst["args"] = e.to_json();
      out.push_back(std::move(inst));
    }

    switch (e.kind) {
      case EventKind::Instrument:
        open_tests[{e.hypothesis, e.focus}] = e.t;
        break;
      case EventKind::ConcludeTrue:
      case EventKind::ConcludeFalse: {
        auto it = open_tests.find({e.hypothesis, e.focus});
        if (it != open_tests.end()) {
          util::Json span = util::Json::object();
          span["name"] = e.focus;
          span["cat"] = e.kind == EventKind::ConcludeTrue ? "test_true" : "test_false";
          span["ph"] = "X";
          span["pid"] = 1;
          span["tid"] = tid;
          span["ts"] = to_us(it->second);
          span["dur"] = to_us(std::max(0.0, e.t - it->second));
          util::Json args = util::Json::object();
          args["fraction"] = e.value;
          args["threshold"] = e.threshold;
          span["args"] = std::move(args);
          out.push_back(std::move(span));
          open_tests.erase(it);
        }
        break;
      }
      case EventKind::PhaseBegin:
      case EventKind::PhaseEnd: {
        util::Json ph = util::Json::object();
        ph["name"] = e.detail;
        ph["cat"] = "phase";
        ph["ph"] = e.kind == EventKind::PhaseBegin ? "B" : "E";
        ph["pid"] = 1;
        ph["tid"] = kSearchTrack;
        ph["ts"] = to_us(e.t);
        out.push_back(std::move(ph));
        break;
      }
      default:
        break;
    }

    // The cost-ceiling counter track: one sample per event that observed
    // the active instrumentation cost.
    if (e.cost != 0.0 || e.kind == EventKind::ProbeRemove) {
      util::Json ctr = util::Json::object();
      ctr["name"] = "active_cost";
      ctr["ph"] = "C";
      ctr["pid"] = 1;
      ctr["ts"] = to_us(e.t);
      util::Json args = util::Json::object();
      args["cost"] = e.cost;
      ctr["args"] = std::move(args);
      out.push_back(std::move(ctr));
    }
  }

  for (const auto& [hyp, tid] : hyp_tid)
    out.push_back(chrome_metadata("thread_name", tid, hyp));

  util::Json trace = util::Json::object();
  trace["traceEvents"] = util::Json(std::move(out));
  trace["displayTimeUnit"] = "ms";
  return trace;
}

std::vector<Event> from_chrome_trace(const util::Json& trace) {
  const util::JsonArray& arr = trace.is_array()
                                   ? trace.as_array()
                                   : trace.at("traceEvents").as_array();
  std::vector<Event> events;
  for (const util::Json& j : arr) {
    if (!j.is_object()) continue;
    if (j.get_or("ph", std::string()) != "i") continue;
    const util::Json* args = j.as_object().find("args");
    if (!args || !args->is_object() || !args->as_object().contains("kind")) continue;
    events.push_back(Event::from_json(*args));
  }
  return events;
}

void save_trace_file(const std::string& path, const std::vector<Event>& events,
                     TraceFormat format) {
  if (format == TraceFormat::Jsonl) {
    util::write_file(path, to_jsonl(events));
  } else {
    util::write_file(path, to_chrome_trace(events).dump(2) + "\n");
  }
}

std::vector<Event> load_trace_file(const std::string& path) {
  const std::string text = util::read_file(path);
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  // A Chrome trace is one JSON document ({"traceEvents": ...} or a bare
  // array); JSONL starts with an object per line. Distinguish by trying the
  // whole-document parse: valid multi-line JSONL fails it immediately, and
  // a single-line file parses as one object that we can inspect.
  if (first != std::string::npos && (text[first] == '{' || text[first] == '[')) {
    try {
      const util::Json doc = util::Json::parse(text);
      if (doc.is_array() ||
          (doc.is_object() && doc.as_object().contains("traceEvents")))
        return from_chrome_trace(doc);
      // A single JSONL line parses as a plain object: fall through.
    } catch (const util::JsonError&) {
      // Multiple lines: JSONL.
    }
  }
  return from_jsonl(text);
}

}  // namespace histpc::telemetry
