#include "telemetry/perf_diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace histpc::telemetry {

namespace {

/// Consistency constant: 1.4826 * MAD estimates the standard deviation of
/// normally distributed data, so `sigma` reads in familiar units.
constexpr double kMadToSigma = 1.4826;

double mean_lap(const Registry::TimerStat& stat) {
  return stat.count ? stat.seconds / static_cast<double>(stat.count) : 0.0;
}

/// The comparable metrics of one record: every timer's mean lap plus the
/// histogram median when present.
std::map<std::string, double> extract_metrics(const PerfRecord& rec) {
  std::map<std::string, double> out;
  for (const auto& [name, stat] : rec.registry.timers()) {
    out[name + ".mean"] = mean_lap(stat);
    if (const Histogram* h = rec.registry.histogram(name); h && !h->empty())
      out[name + ".p50"] = h->quantile(0.5);
  }
  return out;
}

}  // namespace

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

util::Json PerfDiffReport::to_json() const {
  util::Json j = util::Json::object();
  util::Json arr = util::Json::array();
  for (const PerfDiffEntry& e : entries) {
    util::Json row = util::Json::object();
    row["metric"] = e.metric;
    row["current"] = e.current;
    row["median"] = e.median;
    row["mad"] = e.mad;
    row["band"] = e.band;
    row["ratio"] = e.ratio;
    row["baseline_n"] = e.baseline_n;
    row["regressed"] = e.regressed;
    row["improved"] = e.improved;
    arr.push_back(std::move(row));
  }
  j["entries"] = std::move(arr);
  j["regressions"] = regressions;
  j["improvements"] = improvements;
  util::Json ns = util::Json::array();
  for (const std::string& n : notes) ns.push_back(n);
  j["notes"] = std::move(ns);
  return j;
}

PerfDiffReport perf_diff(const PerfRecord& current, const std::vector<PerfRecord>& baseline,
                         const PerfDiffOptions& options) {
  PerfDiffReport report;

  const std::size_t first =
      baseline.size() > options.window ? baseline.size() - options.window : 0;
  const std::vector<PerfRecord> window(baseline.begin() + static_cast<std::ptrdiff_t>(first),
                                       baseline.end());

  std::set<std::string> machines, builds;
  for (const PerfRecord& rec : window) {
    if (!rec.machine.empty() && rec.machine != current.machine) machines.insert(rec.machine);
    if (!rec.build.empty() && rec.build != current.build) builds.insert(rec.build);
  }
  if (!machines.empty())
    report.notes.push_back("baseline includes records from other machines (current: " +
                           current.machine + ") — wall-clock comparisons are approximate");
  if (!builds.empty())
    report.notes.push_back("baseline spans other builds (current: " + current.build +
                           ") — a shift may be the build, not a regression");

  const std::map<std::string, double> cur = extract_metrics(current);
  std::map<std::string, std::vector<double>> base;
  for (const PerfRecord& rec : window)
    for (const auto& [name, value] : extract_metrics(rec)) base[name].push_back(value);

  for (const auto& [name, value] : cur) {
    const auto it = base.find(name);
    if (it == base.end() || it->second.empty()) continue;  // no history to regress against
    PerfDiffEntry e;
    e.metric = name;
    e.current = value;
    e.baseline_n = it->second.size();
    e.median = median_of(it->second);
    std::vector<double> deviations;
    deviations.reserve(it->second.size());
    for (double v : it->second) deviations.push_back(std::abs(v - e.median));
    e.mad = median_of(std::move(deviations));
    e.band = std::max({options.sigma * kMadToSigma * e.mad, options.min_rel * e.median,
                       options.min_abs});
    e.ratio = e.median > 0.0 ? e.current / e.median : 0.0;
    e.regressed = e.current > e.median + e.band;
    e.improved = e.current < e.median - e.band;
    if (e.regressed) ++report.regressions;
    if (e.improved) ++report.improvements;
    report.entries.push_back(std::move(e));
  }
  return report;
}

}  // namespace histpc::telemetry
