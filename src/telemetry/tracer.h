// EventSink and Tracer: how instrumented code reports telemetry.
//
// A Tracer is the per-session façade: an always-on Registry (counters are
// cheap enough to keep unconditionally, and DiagnosisResult summaries come
// from them) plus an optional EventSink for the full structured event
// stream. With no sink attached, emit() is one pointer test — the "null
// sink" that keeps disabled-mode overhead negligible. Callers that build
// Events with non-trivial payloads should guard with tracing() so the
// strings are never materialized when nobody is listening:
//
//   if (tracer.tracing())
//     tracer.emit({EventKind::Refine, now, hyp_name, focus_name});
#pragma once

#include <utility>
#include <vector>

#include "telemetry/event.h"
#include "telemetry/registry.h"

namespace histpc::telemetry {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void record(Event&& e) = 0;
};

/// Explicit stand-in for "tracing off"; equivalent to attaching no sink.
class NullSink final : public EventSink {
 public:
  void record(Event&&) override {}
};

/// In-memory sink; the CLI and tests export after the run.
class VectorSink final : public EventSink {
 public:
  void record(Event&& e) override { events_.push_back(std::move(e)); }
  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

class Tracer {
 public:
  Tracer() = default;  ///< disabled: events discarded, registry still live
  explicit Tracer(EventSink* sink) : sink_(sink) {}

  bool tracing() const { return sink_ != nullptr; }
  void set_sink(EventSink* sink) { sink_ = sink; }

  void emit(Event&& e) {
    if (sink_) sink_->record(std::move(e));
  }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

 private:
  EventSink* sink_ = nullptr;
  Registry registry_;
};

}  // namespace histpc::telemetry
