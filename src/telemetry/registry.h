// Counters / gauges / timers registry.
//
// A Registry is per-session (one per PerformanceConsultant or
// DiagnosisSession) and deliberately unsynchronized: the search loop is
// single-threaded, and keeping the hot-path increment a map bump with no
// lock is what makes it cheap enough to leave always on. Timers measure
// wall-clock (std::chrono::steady_clock) seconds — virtual time lives in
// the event stream, not here.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/json.h"

namespace histpc::telemetry {

class Registry {
 public:
  struct TimerStat {
    std::uint64_t count = 0;
    double seconds = 0.0;
  };

  /// Monotonic counter bump (creates the counter at 0 on first use).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// 0 when the counter has never been touched.
  std::uint64_t counter(std::string_view name) const;

  void gauge_set(std::string_view name, double value);
  /// Keep the maximum seen (peak-style gauges).
  void gauge_max(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Accumulate wall seconds under `name` (one timer "lap").
  void add_seconds(std::string_view name, double seconds);
  TimerStat timer(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, TimerStat, std::less<>>& timers() const { return timers_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && timers_.empty(); }
  void clear();

  /// {"counters": {...}, "gauges": {...}, "timers": {name: {count, seconds}}}
  util::Json to_json() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

/// RAII wall-clock lap: adds elapsed seconds to `registry` on destruction.
/// `name` must outlive the timer (string literals qualify).
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string_view name)
      : registry_(registry), name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    registry_.add_seconds(
        name_, std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                   .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& registry_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace histpc::telemetry
