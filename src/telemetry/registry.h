// Counters / gauges / timers / histograms registry.
//
// A Registry is per-session (one per PerformanceConsultant or
// DiagnosisSession) and deliberately unsynchronized: the search loop is
// single-threaded, and keeping the hot-path increment a map bump with no
// lock is what makes it cheap enough to leave always on. Timers measure
// wall-clock (std::chrono::steady_clock) seconds — virtual time lives in
// the event stream, not here.
//
// Every timer lap is also routed into a fixed-log-bucket Histogram of the
// same name, so any ScopedTimer gains p50/p90/p99/max for free. Registries
// merge deterministically (merge_from), which is what makes quantiles
// independent of how work was split across threads: bucket counts are
// summed, and quantile extraction depends only on the summed counts.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>

#include "util/json.h"

namespace histpc::telemetry {

/// Fixed-log-bucket latency histogram over positive seconds.
//
// Bucket layout: bucket 0 is the underflow bucket (v < 1ns); then
// kSubBuckets buckets per power of two from 1ns up through kOctaves
// octaves (~68s); everything larger lands in a saturating overflow
// bucket. Recording is one binary search over a precomputed bound table
// plus an array increment — no allocation, no lock.
//
// Quantiles are extracted by linear interpolation within the bucket that
// holds the target rank, clamped to the exact recorded [min, max] — so a
// one-sample histogram reports that sample exactly, and two histograms
// with equal bucket counts report bit-identical quantiles regardless of
// the order (or thread) the samples arrived on.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   ///< buckets per power of two (~19% wide)
  static constexpr int kOctaves = 36;     ///< 1ns .. ~68.7s before saturating
  static constexpr int kNumBounds = kSubBuckets * kOctaves;
  static constexpr int kNumBuckets = kNumBounds + 1;  ///< + saturating overflow
  static constexpr double kMinValue = 1e-9;

  /// Record one sample (seconds). Non-positive values count into the
  /// underflow bucket; values past the last bound saturate into the
  /// overflow bucket (no sample is ever dropped).
  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// 0 when empty.
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Quantile in [0, 1]; q=0 is the recorded min, q=1 the recorded max.
  /// 0.0 when the histogram is empty. Deterministic: a pure function of
  /// the bucket counts and the recorded min/max.
  double quantile(double q) const;

  /// Sum counts bucket-wise (and fold count/sum/min/max).
  void merge_from(const Histogram& other);

  bool empty() const { return count_ == 0; }

  /// Lower bound of bucket `i` in seconds (0.0 for the underflow bucket).
  static double bucket_lower_bound(int i);
  /// Bucket index a value records into (exposed for boundary tests).
  static int bucket_index(double seconds);

  /// {"count", "sum", "min", "max", "p50", "p90", "p99",
  ///  "buckets": [[index, count], ...]} — buckets sparse, quantiles
  /// precomputed for human readers; from_json rebuilds from the buckets.
  util::Json to_json() const;
  static Histogram from_json(const util::Json& j);

  const std::array<std::uint64_t, kNumBuckets>& buckets() const { return buckets_; }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class Registry {
 public:
  struct TimerStat {
    std::uint64_t count = 0;
    double seconds = 0.0;
    /// Per-lap extrema; min is +inf (and max -inf) until the first lap so
    /// folding two stats is a plain min/max.
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  /// Monotonic counter bump (creates the counter at 0 on first use).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// 0 when the counter has never been touched.
  std::uint64_t counter(std::string_view name) const;

  void gauge_set(std::string_view name, double value);
  /// Keep the maximum seen (peak-style gauges).
  void gauge_max(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Accumulate wall seconds under `name` (one timer "lap"). The lap is
  /// also recorded into the histogram of the same name.
  void add_seconds(std::string_view name, double seconds);
  TimerStat timer(std::string_view name) const;

  /// Record into a named histogram without touching the timers — for
  /// distributions that aren't wall-clock laps (e.g. per-query ns).
  void record_value(std::string_view name, double value);
  /// nullptr when the histogram has never been touched.
  const Histogram* histogram(std::string_view name) const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, TimerStat, std::less<>>& timers() const { return timers_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Fold another registry into this one: counters and timers sum (timer
  /// min/max fold), histograms merge bucket-wise, gauges keep the maximum
  /// (peak semantics — the only gauge style the system records).
  /// Order-independent, so folding per-thread registries is deterministic.
  void merge_from(const Registry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && timers_.empty() && histograms_.empty();
  }
  void clear();

  /// {"counters": {...}, "gauges": {...},
  ///  "timers": {name: {count, seconds, min, max}},
  ///  "histograms": {name: Histogram::to_json()}}
  util::Json to_json() const;
  /// Inverse of to_json (tolerates records written before histograms /
  /// timer extrema existed). Throws util::JsonError on malformed input.
  static Registry from_json(const util::Json& j);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// RAII wall-clock lap: adds elapsed seconds to `registry` on destruction.
/// `name` must outlive the timer (string literals qualify).
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string_view name)
      : registry_(registry), name_(name), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    registry_.add_seconds(
        name_, std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                   .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& registry_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace histpc::telemetry
