// Cross-run regression detection over PerfRecords.
//
// Compares the current run's wall-clock metrics against a baseline window
// of K historical records: for each metric the baseline median and MAD
// (median absolute deviation) define a robust band, and a current value
// past `median + max(sigma * 1.4826 * MAD, min_rel * median, min_abs)` is
// flagged as a regression (symmetrically below, an improvement). MAD
// rather than stddev so one outlier baseline run cannot widen the band
// arbitrarily; the relative and absolute floors keep micro-benchmark
// jitter on near-zero or near-constant metrics from flagging noise.
//
// Metrics compared, per timer name T in the current record:
//   "T.mean" — seconds / count (mean lap)
//   "T.p50"  — histogram median lap, when the histogram exists
// Counters and gauges are identity data, not performance, and are skipped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/perf_record.h"

namespace histpc::telemetry {

struct PerfDiffOptions {
  std::size_t window = 5;  ///< most recent baseline records considered
  double sigma = 5.0;      ///< MAD multiplier for the regression band
  double min_rel = 0.5;    ///< band floor as a fraction of the baseline median
  double min_abs = 50e-6;  ///< band floor in absolute seconds
};

struct PerfDiffEntry {
  std::string metric;          ///< "pc.advance.mean", "session.diagnose.p50", ...
  double current = 0.0;        ///< this run's value (seconds)
  double median = 0.0;         ///< baseline median
  double mad = 0.0;            ///< baseline median absolute deviation
  double band = 0.0;           ///< half-width of the acceptance band
  double ratio = 0.0;          ///< current / median (0 when median is 0)
  std::size_t baseline_n = 0;  ///< baseline records carrying this metric
  bool regressed = false;      ///< current > median + band
  bool improved = false;       ///< current < median - band
};

struct PerfDiffReport {
  std::vector<PerfDiffEntry> entries;  ///< sorted by metric name
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  /// Context warnings that make the numbers suspect (machine or build
  /// mismatch between current and baseline records); empty when clean.
  std::vector<std::string> notes;

  util::Json to_json() const;
};

/// Median of `values` (averaged middle pair for even sizes). 0 when empty.
double median_of(std::vector<double> values);

/// Diff `current` against the last `options.window` records of `baseline`
/// (oldest first, as PerfLog::read_all returns them). Metrics present in
/// the current record but absent from every baseline record are skipped —
/// a new timer has no history to regress against.
PerfDiffReport perf_diff(const PerfRecord& current, const std::vector<PerfRecord>& baseline,
                         const PerfDiffOptions& options = {});

}  // namespace histpc::telemetry
