// Structured search-telemetry events.
//
// Every decision the Performance Consultant (and the layers under it)
// makes during an online search is recorded as one typed Event: what
// happened, at which *virtual* time, for which (hypothesis : focus) pair,
// with the measured value, the test level it was compared against, and the
// instrumentation cost active at that moment. Events are plain data;
// sinks (see tracer.h) decide whether they are kept, and the serializers
// here turn a recorded stream into JSONL or a Chrome trace-event file
// loadable in chrome://tracing and Perfetto.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace histpc::telemetry {

enum class EventKind {
  Instrument,     ///< a (hypothesis : focus) pair started collecting data
  ConcludeTrue,   ///< pair tested true (bottleneck found)
  ConcludeFalse,  ///< pair tested false
  Refine,         ///< a true node expanded into child candidates
  PruneHit,       ///< a candidate was excluded by a directive (detail = kind)
  PrioritySeed,   ///< a high-priority pair was queued at search start
  CostGate,       ///< the cost ceiling engaged/released (detail says which)
  ProbeInsert,    ///< instrumentation request issued (detail = metric)
  ProbeRemove,    ///< instrumentation deleted
  PhaseBegin,     ///< a named phase opened (detail = phase name)
  PhaseEnd,       ///< a named phase closed
};

inline constexpr EventKind kAllEventKinds[] = {
    EventKind::Instrument, EventKind::ConcludeTrue, EventKind::ConcludeFalse,
    EventKind::Refine,     EventKind::PruneHit,     EventKind::PrioritySeed,
    EventKind::CostGate,   EventKind::ProbeInsert,  EventKind::ProbeRemove,
    EventKind::PhaseBegin, EventKind::PhaseEnd,
};

/// Stable wire name ("instrument", "conclude_true", ...).
const char* event_kind_name(EventKind kind);
std::optional<EventKind> event_kind_from_name(std::string_view name);

struct Event {
  EventKind kind = EventKind::Instrument;
  double t = 0.0;          ///< virtual time (seconds into the execution)
  std::string hypothesis;  ///< empty when the event has no hypothesis
  std::string focus;       ///< canonical focus name; empty when n/a
  double value = 0.0;      ///< measured fraction, probe cost, ... (per kind)
  double threshold = 0.0;  ///< test level the value was compared against
  double cost = 0.0;       ///< total active instrumentation cost at event time
  std::string detail;      ///< kind-specific tag (directive kind, phase, metric)

  bool operator==(const Event&) const = default;

  /// Compact object; zero/empty fields are omitted (get_or restores them).
  util::Json to_json() const;
  static Event from_json(const util::Json& j);  ///< throws util::JsonError
};

enum class TraceFormat { Jsonl, Chrome };
std::optional<TraceFormat> trace_format_from_name(std::string_view name);

/// One JSON object per line, in recording order.
std::string to_jsonl(const std::vector<Event>& events);
std::vector<Event> from_jsonl(std::string_view text);

/// Chrome trace-event JSON ({"traceEvents": [...]}): one track per
/// hypothesis plus a "search" track (phases, cost gates, probe churn),
/// instrument→conclude spans, and an "active_cost" counter track showing
/// the load the expansion throttle watches. Every telemetry event is also
/// present as an instant event carrying its full payload in "args", so
/// from_chrome_trace() round-trips losslessly.
util::Json to_chrome_trace(const std::vector<Event>& events);
std::vector<Event> from_chrome_trace(const util::Json& trace);

/// Serialize to `path` in the given format (atomic write).
void save_trace_file(const std::string& path, const std::vector<Event>& events,
                     TraceFormat format);
/// Load a trace saved by save_trace_file, auto-detecting the format.
std::vector<Event> load_trace_file(const std::string& path);

}  // namespace histpc::telemetry
