// PerfRecord: one run's telemetry, persisted as historical performance
// data about histpc itself.
//
// The paper's thesis — historical performance data improves online
// diagnosis — applies to the diagnoser too: a diagnosis whose `pc.advance`
// got slower is a regression we should detect the same way the consultant
// detects application bottlenecks, by comparing against prior runs. Each
// DiagnosisSession (and each bench binary) can snapshot its Registry into
// a versioned PerfRecord and append it to a JSONL PerfLog; `histpc
// perf-report` renders the latest record and `histpc perf-diff` flags
// metrics whose value shifted beyond a MAD-based band over a baseline
// window (see perf_diff.h).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/registry.h"
#include "util/json.h"

namespace histpc::telemetry {

/// Identity of the binary: `git describe --always --dirty` captured at
/// configure time (CMake), "unknown" when built outside a git checkout.
std::string build_id();
/// Hostname, or "unknown" when it cannot be determined.
std::string machine_name();

struct PerfRecord {
  /// Bump when the serialized shape changes incompatibly; from_json
  /// rejects records from a newer schema instead of misreading them.
  static constexpr int kSchemaVersion = 1;

  int schema = kSchemaVersion;
  std::string app;       ///< what ran ("poisson_c", "micro_core")
  std::string version;   ///< app version label ("1", "C", "bench")
  std::string kind;      ///< "diagnose" | "bench"
  std::string machine;   ///< hostname the record was measured on
  std::string build;     ///< build_id() of the recording binary
  /// Config knobs that shape performance (threshold, cost limit, engine
  /// toggles) — a diff across records with different knobs is noise, so
  /// they travel with the numbers.
  std::map<std::string, std::string> config;
  /// Full counters/gauges/timers/histograms snapshot.
  Registry registry;

  /// One JSON object (a single JSONL line when dumped compact).
  util::Json to_json() const;
  /// Throws util::JsonError on malformed input or a newer schema.
  static PerfRecord from_json(const util::Json& j);
};

/// Append-only JSONL file of PerfRecords, newest last. Appends are O(1)
/// (one line written in append mode — `histpc serve` appends a record per
/// request, so rewriting the file would be quadratic); a crash mid-append
/// leaves at worst one corrupt tail line, and reads quarantine corrupt
/// lines (one Warn naming the path and line, then skip) instead of
/// aborting — the same quarantine-on-corrupt contract as
/// ExperimentStore::try_load. Concurrent appenders must serialize
/// externally (the server holds one mutex across its workers).
class PerfLog {
 public:
  explicit PerfLog(std::string path);

  const std::string& path() const { return path_; }

  /// Persist one record at the end of the log.
  void append(const PerfRecord& record);

  /// All parseable records, oldest first. Corrupt or foreign lines are
  /// quarantined (warned and skipped); a missing file reads as empty.
  std::vector<PerfRecord> read_all() const;

  /// Newest parseable record, or nullopt when the log is empty.
  std::optional<PerfRecord> latest() const;

  /// Canonical per-store location: `<store_dir>/perf-log/<app>.jsonl`,
  /// with the app name escaped the same way run ids are.
  static std::string path_in_store(const std::string& store_dir, const std::string& app);

 private:
  std::string path_;
};

}  // namespace histpc::telemetry
