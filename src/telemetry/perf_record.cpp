#include "telemetry/perf_record.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/log.h"
#include "util/strings.h"

namespace histpc::telemetry {

namespace fs = std::filesystem;

std::string build_id() {
#ifdef HISTPC_BUILD_ID
  return HISTPC_BUILD_ID;
#else
  return "unknown";
#endif
}

std::string machine_name() {
#ifndef _WIN32
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

util::Json PerfRecord::to_json() const {
  util::Json j = util::Json::object();
  j["schema"] = schema;
  j["app"] = app;
  j["version"] = version;
  j["kind"] = kind;
  j["machine"] = machine;
  j["build"] = build;
  util::Json cfg = util::Json::object();
  for (const auto& [key, value] : config) cfg[key] = value;
  j["config"] = std::move(cfg);
  j["telemetry"] = registry.to_json();
  return j;
}

PerfRecord PerfRecord::from_json(const util::Json& j) {
  PerfRecord rec;
  rec.schema = static_cast<int>(j.at("schema").as_double());
  if (rec.schema > kSchemaVersion)
    throw util::JsonError("perf record schema " + std::to_string(rec.schema) +
                          " is newer than this binary understands (" +
                          std::to_string(kSchemaVersion) + ")");
  rec.app = j.at("app").as_string();
  rec.version = j.get_or("version", std::string());
  rec.kind = j.get_or("kind", std::string());
  rec.machine = j.get_or("machine", std::string());
  rec.build = j.get_or("build", std::string());
  if (const util::Json* cfg = j.as_object().find("config")) {
    for (const auto& [key, value] : cfg->as_object())
      rec.config.emplace(key, value.as_string());
  }
  rec.registry = Registry::from_json(j.at("telemetry"));
  return rec;
}

PerfLog::PerfLog(std::string path) : path_(std::move(path)) {
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
}

void PerfLog::append(const PerfRecord& record) {
  // True O(1) append. The old read-whole-file-and-rewrite implementation
  // was quadratic in log length — harmless for a CLI run per day, ruinous
  // for `histpc serve` appending one record per request. A single
  // one-line append is effectively atomic; a crash mid-write leaves one
  // corrupt tail line, which read_all() quarantines like any other.
  std::ofstream out(path_, std::ios::app | std::ios::binary);
  if (!out) throw std::runtime_error("cannot append to perf log " + path_);
  out << record.to_json().dump() << '\n';
}

std::vector<PerfRecord> PerfLog::read_all() const {
  std::vector<PerfRecord> out;
  if (!fs::exists(path_)) return out;
  const std::string text = util::read_file(path_);
  std::size_t pos = 0, line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    try {
      out.push_back(PerfRecord::from_json(util::Json::parse(line)));
    } catch (const std::exception& e) {
      HISTPC_LOG(Warn) << "quarantining corrupt perf-log line " << line_no << " in "
                       << path_ << ": " << e.what();
    }
  }
  return out;
}

std::optional<PerfRecord> PerfLog::latest() const {
  std::vector<PerfRecord> all = read_all();
  if (all.empty()) return std::nullopt;
  return std::move(all.back());
}

std::string PerfLog::path_in_store(const std::string& store_dir, const std::string& app) {
  std::string name(app);
  for (char& c : name)
    if (c == '/' || c == '\\') c = '-';
  return store_dir + "/perf-log/" + name + ".jsonl";
}

}  // namespace histpc::telemetry
