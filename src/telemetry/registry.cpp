#include "telemetry/registry.h"

#include <algorithm>
#include <cmath>

namespace histpc::telemetry {

namespace {

/// Upper-bound table: kBounds[j] is the exclusive upper bound of bucket j
/// (and the inclusive lower bound of bucket j+1). Generated once; lookups
/// binary-search it so bucket assignment is exact at the boundaries —
/// recording bucket_lower_bound(i) lands in bucket i, not a float-fuzz
/// neighbor.
const std::array<double, Histogram::kNumBounds>& bucket_bounds() {
  static const std::array<double, Histogram::kNumBounds> bounds = [] {
    std::array<double, Histogram::kNumBounds> b{};
    for (int j = 0; j < Histogram::kNumBounds; ++j)
      b[static_cast<std::size_t>(j)] =
          Histogram::kMinValue * std::pow(2.0, static_cast<double>(j) / Histogram::kSubBuckets);
    return b;
  }();
  return bounds;
}

}  // namespace

int Histogram::bucket_index(double seconds) {
  const auto& bounds = bucket_bounds();
  // First bound strictly greater than the value: bucket j covers
  // [bounds[j-1], bounds[j]), bucket 0 is v < bounds[0] == kMinValue, and
  // v >= the last bound saturates into the overflow bucket.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), seconds);
  return static_cast<int>(it - bounds.begin());
}

double Histogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  return bucket_bounds()[static_cast<std::size_t>(i - 1)];
}

void Histogram::record(double seconds) {
  ++buckets_[static_cast<std::size_t>(bucket_index(seconds))];
  ++count_;
  sum_ += seconds;
  min_ = std::min(min_, seconds);
  max_ = std::max(max_, seconds);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in (0, count]: the quantile is the value of the target-th
  // sample in sorted order, located by walking cumulative bucket counts
  // and interpolating linearly inside the holding bucket.
  const double target = std::max(q * static_cast<double>(count_), 1e-12);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const std::uint64_t next = cum + n;
    if (static_cast<double>(next) >= target) {
      const double lo = bucket_lower_bound(i);
      // The overflow bucket has no upper bound; the recorded max serves.
      const double hi = i + 1 < kNumBuckets ? bucket_lower_bound(i + 1) : max_;
      const double frac = (target - static_cast<double>(cum)) / static_cast<double>(n);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      // Clamping to the exact extrema makes one-sample (and one-bucket
      // tail) quantiles exact instead of bucket-midpoint approximations.
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

util::Json Histogram::to_json() const {
  util::Json j = util::Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["min"] = min();
  j["max"] = max();
  j["p50"] = quantile(0.50);
  j["p90"] = quantile(0.90);
  j["p99"] = quantile(0.99);
  util::Json buckets = util::Json::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    util::Json pair = util::Json::array();
    pair.push_back(static_cast<std::int64_t>(i));
    pair.push_back(buckets_[i]);
    buckets.push_back(std::move(pair));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

Histogram Histogram::from_json(const util::Json& j) {
  Histogram h;
  h.count_ = static_cast<std::uint64_t>(j.at("count").as_double());
  h.sum_ = j.at("sum").as_double();
  if (h.count_ > 0) {
    h.min_ = j.at("min").as_double();
    h.max_ = j.at("max").as_double();
  }
  for (const auto& pair : j.at("buckets").as_array()) {
    const auto& arr = pair.as_array();
    if (arr.size() != 2) throw util::JsonError("histogram bucket entry is not [index, count]");
    const std::int64_t idx = arr[0].as_int();
    if (idx < 0 || idx >= kNumBuckets)
      throw util::JsonError("histogram bucket index " + std::to_string(idx) + " out of range");
    h.buckets_[static_cast<std::size_t>(idx)] = static_cast<std::uint64_t>(arr[1].as_double());
  }
  return h;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::gauge_set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::gauge_max(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

double Registry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::add_seconds(std::string_view name, double seconds) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    timers_.emplace(std::string(name), TimerStat{1, seconds, seconds, seconds});
  } else {
    ++it->second.count;
    it->second.seconds += seconds;
    it->second.min = std::min(it->second.min, seconds);
    it->second.max = std::max(it->second.max, seconds);
  }
  record_value(name, seconds);
}

Registry::TimerStat Registry::timer(std::string_view name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void Registry::record_value(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  it->second.record(value);
}

const Histogram* Registry::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) gauge_max(name, v);
  for (const auto& [name, stat] : other.timers_) {
    auto it = timers_.find(name);
    if (it == timers_.end()) {
      timers_.emplace(name, stat);
    } else {
      it->second.count += stat.count;
      it->second.seconds += stat.seconds;
      it->second.min = std::min(it->second.min, stat.min);
      it->second.max = std::max(it->second.max, stat.max);
    }
  }
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.merge_from(hist);
    }
  }
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

util::Json Registry::to_json() const {
  util::Json j = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, v] : counters_) counters[name] = v;
  j["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const auto& [name, v] : gauges_) gauges[name] = v;
  j["gauges"] = std::move(gauges);
  util::Json timers = util::Json::object();
  for (const auto& [name, stat] : timers_) {
    util::Json t = util::Json::object();
    t["count"] = stat.count;
    t["seconds"] = stat.seconds;
    // Untouched timers never serialize (they aren't in the map), so the
    // extrema here are always finite.
    t["min"] = stat.count ? stat.min : 0.0;
    t["max"] = stat.count ? stat.max : 0.0;
    timers[name] = std::move(t);
  }
  j["timers"] = std::move(timers);
  util::Json histograms = util::Json::object();
  for (const auto& [name, hist] : histograms_) histograms[name] = hist.to_json();
  j["histograms"] = std::move(histograms);
  return j;
}

Registry Registry::from_json(const util::Json& j) {
  Registry reg;
  for (const auto& [name, v] : j.at("counters").as_object())
    reg.counters_.emplace(name, static_cast<std::uint64_t>(v.as_double()));
  for (const auto& [name, v] : j.at("gauges").as_object())
    reg.gauges_.emplace(name, v.as_double());
  for (const auto& [name, t] : j.at("timers").as_object()) {
    TimerStat stat;
    stat.count = static_cast<std::uint64_t>(t.at("count").as_double());
    stat.seconds = t.at("seconds").as_double();
    // Records from before per-lap extrema existed carry only the totals;
    // the mean lap is the best available stand-in for both.
    const double mean = stat.count ? stat.seconds / static_cast<double>(stat.count) : 0.0;
    stat.min = t.get_or("min", mean);
    stat.max = t.get_or("max", mean);
    reg.timers_.emplace(name, stat);
  }
  if (const util::Json* hists = j.as_object().find("histograms")) {
    for (const auto& [name, h] : hists->as_object())
      reg.histograms_.emplace(name, Histogram::from_json(h));
  }
  return reg;
}

}  // namespace histpc::telemetry
