#include "telemetry/registry.h"

#include <algorithm>

namespace histpc::telemetry {

void Registry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Registry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::gauge_set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::gauge_max(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

double Registry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::add_seconds(std::string_view name, double seconds) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    timers_.emplace(std::string(name), TimerStat{1, seconds});
  } else {
    ++it->second.count;
    it->second.seconds += seconds;
  }
}

Registry::TimerStat Registry::timer(std::string_view name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

util::Json Registry::to_json() const {
  util::Json j = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, v] : counters_) counters[name] = v;
  j["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const auto& [name, v] : gauges_) gauges[name] = v;
  j["gauges"] = std::move(gauges);
  util::Json timers = util::Json::object();
  for (const auto& [name, stat] : timers_) {
    util::Json t = util::Json::object();
    t["count"] = stat.count;
    t["seconds"] = stat.seconds;
    timers[name] = std::move(t);
  }
  j["timers"] = std::move(timers);
  return j;
}

}  // namespace histpc::telemetry
