#include "resources/resource_hierarchy.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace histpc::resources {

ResourceHierarchy::ResourceHierarchy(std::string name) : name_(std::move(name)) {
  if (name_.empty() || name_.find('/') != std::string::npos)
    throw std::invalid_argument("hierarchy name must be a single non-empty label");
  ResourceNode root;
  root.label = name_;
  root.full_name = "/" + name_;
  root.depth = 0;
  nodes_.push_back(std::move(root));
  by_name_.emplace(nodes_[0].full_name, 0);
}

ResourceId ResourceHierarchy::add_child(ResourceId parent, std::string_view label) {
  if (parent < 0 || static_cast<std::size_t>(parent) >= nodes_.size())
    throw std::out_of_range("add_child: bad parent id");
  if (label.empty() || label.find('/') != std::string_view::npos)
    throw std::invalid_argument("resource label must be a single non-empty path component");
  std::string full = nodes_[static_cast<std::size_t>(parent)].full_name + "/" + std::string(label);
  if (auto it = by_name_.find(full); it != by_name_.end()) return it->second;
  ResourceNode n;
  n.label = std::string(label);
  n.full_name = full;
  n.parent = parent;
  n.depth = nodes_[static_cast<std::size_t>(parent)].depth + 1;
  ResourceId id = static_cast<ResourceId>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  by_name_.emplace(nodes_.back().full_name, id);
  return id;
}

ResourceId ResourceHierarchy::add_path(std::string_view full_name) {
  auto parts = util::split_view(full_name, '/');
  // Expect "", name, [labels...] for "/Name/a/b".
  if (parts.size() < 2 || !parts[0].empty() || parts[1] != name_)
    throw std::invalid_argument("add_path: name '" + std::string(full_name) +
                                "' does not belong to hierarchy /" + name_);
  ResourceId cur = root();
  for (std::size_t i = 2; i < parts.size(); ++i) cur = add_child(cur, parts[i]);
  return cur;
}

ResourceId ResourceHierarchy::find(std::string_view full_name) const {
  auto it = by_name_.find(std::string(full_name));
  return it == by_name_.end() ? kNoResource : it->second;
}

std::vector<ResourceId> ResourceHierarchy::leaves_under(ResourceId id) const {
  std::vector<ResourceId> out;
  std::vector<ResourceId> stack{id};
  while (!stack.empty()) {
    ResourceId cur = stack.back();
    stack.pop_back();
    const auto& n = node(cur);
    if (n.children.empty()) {
      out.push_back(cur);
    } else {
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) stack.push_back(*it);
    }
  }
  return out;
}

bool ResourceHierarchy::is_ancestor_or_self(ResourceId ancestor, ResourceId id) const {
  for (ResourceId cur = id; cur != kNoResource;
       cur = node(cur).parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

std::vector<ResourceId> ResourceHierarchy::preorder() const {
  std::vector<ResourceId> out;
  out.reserve(nodes_.size());
  std::vector<ResourceId> stack{root()};
  while (!stack.empty()) {
    ResourceId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& n = node(cur);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::string ResourceHierarchy::render(
    const std::unordered_map<std::string, std::string>* tags) const {
  std::ostringstream os;
  // Recursive lambda over (id, prefix, is_last).
  auto emit = [&](auto&& self, ResourceId id, const std::string& prefix, bool last) -> void {
    const auto& n = node(id);
    if (id == root()) {
      os << n.label;
    } else {
      os << prefix << (last ? "`- " : "|- ") << n.label;
    }
    if (tags) {
      if (auto it = tags->find(n.full_name); it != tags->end()) os << " [" << it->second << "]";
    }
    os << '\n';
    std::string child_prefix =
        id == root() ? std::string() : prefix + (last ? "   " : "|  ");
    for (std::size_t i = 0; i < n.children.size(); ++i)
      self(self, n.children[i], child_prefix, i + 1 == n.children.size());
  };
  emit(emit, root(), "", true);
  return os.str();
}

}  // namespace histpc::resources
