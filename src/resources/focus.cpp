#include "resources/focus.h"

#include <algorithm>

#include "util/strings.h"

namespace histpc::resources {

Focus Focus::whole_program(const ResourceDb& db) {
  std::vector<std::string> parts;
  parts.reserve(db.num_hierarchies());
  for (std::size_t i = 0; i < db.num_hierarchies(); ++i)
    parts.push_back("/" + db.hierarchy(i).name());
  return Focus(std::move(parts));
}

namespace {
void set_parse_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}
}  // namespace

std::optional<Focus> Focus::parse(std::string_view text, const ResourceDb& db,
                                  bool validate_resources, std::string* error) {
  text = util::trim(text);
  if (!text.empty() && text.front() == '<') {
    if (text.back() != '>') {
      set_parse_error(error, "unterminated '<' in focus '" + std::string(text) + "'");
      return std::nullopt;
    }
    text = text.substr(1, text.size() - 2);
  }
  std::vector<std::string> parts(db.num_hierarchies());
  std::vector<bool> seen(db.num_hierarchies(), false);
  for (auto raw : util::split_view(text, ',')) {
    auto part = util::trim(raw);
    if (part.empty()) continue;
    auto comps = util::split_view(part, '/');
    if (comps.size() < 2 || !comps[0].empty()) {
      set_parse_error(error, "malformed part '" + std::string(part) +
                                 "': expected /Hierarchy[/resource...]");
      return std::nullopt;
    }
    int idx = db.hierarchy_index(comps[1]);
    if (idx < 0) {
      set_parse_error(error, "part '" + std::string(part) + "' names unknown hierarchy '" +
                                 std::string(comps[1]) + "'");
      return std::nullopt;
    }
    auto uidx = static_cast<std::size_t>(idx);
    if (seen[uidx]) {
      set_parse_error(error, "duplicate part for hierarchy '" + std::string(comps[1]) +
                                 "': '" + std::string(part) + "'");
      return std::nullopt;
    }
    if (validate_resources && db.hierarchy(uidx).find(part) == kNoResource) {
      set_parse_error(error, "part '" + std::string(part) +
                                 "' names a resource missing from hierarchy '" +
                                 std::string(comps[1]) + "'");
      return std::nullopt;
    }
    parts[uidx] = std::string(part);
    seen[uidx] = true;
  }
  // Unmentioned hierarchies default to their roots (unconstrained).
  for (std::size_t i = 0; i < parts.size(); ++i)
    if (!seen[i]) parts[i] = "/" + db.hierarchy(i).name();
  return Focus(std::move(parts));
}

std::string Focus::name() const {
  return "<" + util::join(parts_, ",") + ">";
}

bool Focus::is_whole_program() const {
  return std::all_of(parts_.begin(), parts_.end(), [](const std::string& p) {
    return !p.empty() && p.find('/', 1) == std::string::npos;
  });
}

int Focus::total_depth(const ResourceDb& db) const {
  int depth = 0;
  for (std::size_t i = 0; i < parts_.size() && i < db.num_hierarchies(); ++i) {
    ResourceId id = db.hierarchy(i).find(parts_[i]);
    if (id != kNoResource) depth += db.hierarchy(i).node(id).depth;
  }
  return depth;
}

std::vector<Focus> Focus::refinements(const ResourceDb& db) const {
  std::vector<Focus> out;
  for (std::size_t i = 0; i < parts_.size() && i < db.num_hierarchies(); ++i) {
    const auto& h = db.hierarchy(i);
    ResourceId id = h.find(parts_[i]);
    if (id == kNoResource) continue;
    for (ResourceId child : h.node(id).children) {
      out.push_back(with_part(i, h.node(child).full_name));
    }
  }
  return out;
}

Focus Focus::with_part(std::size_t idx, std::string part) const {
  Focus f(*this);
  f.parts_.at(idx) = std::move(part);
  return f;
}

bool Focus::contains(const Focus& other) const {
  if (parts_.size() != other.parts_.size()) return false;
  for (std::size_t i = 0; i < parts_.size(); ++i)
    if (!util::is_path_prefix(parts_[i], other.parts_[i])) return false;
  return true;
}

}  // namespace histpc::resources
