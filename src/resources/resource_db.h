// The complete resource view of one program execution: an ordered set of
// resource hierarchies (canonically Code, Machine, Process, SyncObject).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "resources/resource_hierarchy.h"
#include "util/json.h"

namespace histpc::resources {

/// Canonical hierarchy names used throughout HistPC. Applications may add
/// further hierarchies (e.g. a DataFile hierarchy); the PC iterates whatever
/// the db contains.
inline constexpr std::string_view kCodeHierarchy = "Code";
inline constexpr std::string_view kMachineHierarchy = "Machine";
inline constexpr std::string_view kProcessHierarchy = "Process";
inline constexpr std::string_view kSyncObjectHierarchy = "SyncObject";

class ResourceDb {
 public:
  ResourceDb() = default;
  /// Deep copies: a copied db owns independent hierarchies.
  ResourceDb(const ResourceDb& other);
  ResourceDb& operator=(const ResourceDb& other);
  ResourceDb(ResourceDb&&) = default;
  ResourceDb& operator=(ResourceDb&&) = default;

  /// Create the four canonical hierarchies (empty below their roots).
  static ResourceDb with_standard_hierarchies();

  /// Adds (or returns the existing) hierarchy named `name`.
  ResourceHierarchy& add_hierarchy(std::string_view name);

  /// Index of hierarchy `name`, or -1.
  int hierarchy_index(std::string_view name) const;
  bool has_hierarchy(std::string_view name) const { return hierarchy_index(name) >= 0; }

  ResourceHierarchy& hierarchy(std::size_t idx) { return *hierarchies_.at(idx); }
  const ResourceHierarchy& hierarchy(std::size_t idx) const { return *hierarchies_.at(idx); }
  ResourceHierarchy& hierarchy(std::string_view name);
  const ResourceHierarchy& hierarchy(std::string_view name) const;

  std::size_t num_hierarchies() const { return hierarchies_.size(); }

  /// Add a resource by full name; the owning hierarchy is the first path
  /// component and is created on demand.
  ResourceId add_resource(std::string_view full_name);

  /// True if `full_name` names an existing resource in any hierarchy.
  bool contains(std::string_view full_name) const;

  /// Every resource full name, grouped by hierarchy in preorder.
  std::vector<std::string> all_resource_names() const;

  /// Serialize to / deserialize from the experiment-store JSON schema:
  /// { "Code": ["/Code/a.f", ...], "Machine": [...] }.
  util::Json to_json() const;
  static ResourceDb from_json(const util::Json& j);

 private:
  // unique_ptr keeps ResourceHierarchy addresses stable across add_hierarchy.
  std::vector<std::unique_ptr<ResourceHierarchy>> hierarchies_;
};

}  // namespace histpc::resources
