// Resource hierarchies in the Paradyn sense.
//
// A program is represented as a set of discrete resources organized into
// trees ("resource hierarchies"): Code (modules and functions), Machine
// (nodes), Process, and SyncObject (message tags). A resource's name is the
// '/'-joined path of labels from the hierarchy root, e.g.
// "/Code/testutil.C/verifyA" (paper Fig. 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace histpc::resources {

/// Index of a resource within its hierarchy; the root is always 0.
using ResourceId = std::int32_t;
inline constexpr ResourceId kNoResource = -1;

struct ResourceNode {
  std::string label;      ///< last path component ("verifyA")
  std::string full_name;  ///< full path ("/Code/testutil.C/verifyA")
  ResourceId parent = kNoResource;
  std::vector<ResourceId> children;
  int depth = 0;  ///< root = 0
};

/// One tree of resources. Insertion is idempotent by full name; nodes are
/// never removed, so ResourceIds are stable for the lifetime of the
/// hierarchy — the search history graph and metric engine cache them.
class ResourceHierarchy {
 public:
  /// Creates the hierarchy with root "/<name>".
  explicit ResourceHierarchy(std::string name);

  const std::string& name() const { return name_; }
  ResourceId root() const { return 0; }
  std::size_t size() const { return nodes_.size(); }

  const ResourceNode& node(ResourceId id) const { return nodes_.at(static_cast<std::size_t>(id)); }

  /// Add a child of `parent` labeled `label`; returns the existing node if
  /// already present.
  ResourceId add_child(ResourceId parent, std::string_view label);

  /// Add a resource by full name ("/Code/a.f/f1"), creating intermediate
  /// nodes. The first path component must equal the hierarchy name.
  /// Throws std::invalid_argument on malformed names.
  ResourceId add_path(std::string_view full_name);

  /// Find by full name; kNoResource if absent.
  ResourceId find(std::string_view full_name) const;
  bool contains(std::string_view full_name) const { return find(full_name) != kNoResource; }

  /// All leaf resources under `id` (id itself if a leaf).
  std::vector<ResourceId> leaves_under(ResourceId id) const;

  /// True if `ancestor` is `id` or a proper ancestor of `id`.
  bool is_ancestor_or_self(ResourceId ancestor, ResourceId id) const;

  /// Pre-order traversal of all node ids.
  std::vector<ResourceId> preorder() const;

  /// ASCII rendering of the tree (used by the Figure 1 bench), e.g.
  ///   Code
  ///   |- main.C
  ///   |  |- main
  ///   ...
  /// `tag_of`, when provided, appends " [tag]" per node (execution maps).
  std::string render(const std::unordered_map<std::string, std::string>* tags = nullptr) const;

 private:
  std::string name_;
  std::vector<ResourceNode> nodes_;
  std::unordered_map<std::string, ResourceId> by_name_;
};

}  // namespace histpc::resources
