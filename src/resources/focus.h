// A focus constrains a performance measurement to part of the program:
// one selected resource per hierarchy. Selecting a hierarchy root is the
// unconstrained view. Canonical text form mirrors the paper:
//   </Code/testutil.C/verifyA,/Machine,/Process/Tester:2,/SyncObject>
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "resources/resource_db.h"

namespace histpc::resources {

class Focus {
 public:
  Focus() = default;

  /// One part (a resource full name) per hierarchy, in db hierarchy order.
  explicit Focus(std::vector<std::string> parts) : parts_(std::move(parts)) {}

  /// The unconstrained focus over every hierarchy in `db`.
  static Focus whole_program(const ResourceDb& db);

  /// Parse "</a,/b,...>" (or "/a,/b" without brackets). Parts are reordered
  /// to match `db` hierarchy order. Returns nullopt if any part names a
  /// hierarchy absent from `db`, if a hierarchy appears twice, or if
  /// `validate_resources` is set and a part names a missing resource.
  /// On failure, `error` (when non-null) receives a diagnostic naming the
  /// offending part and the hierarchy it failed against.
  static std::optional<Focus> parse(std::string_view text, const ResourceDb& db,
                                    bool validate_resources = true,
                                    std::string* error = nullptr);

  const std::vector<std::string>& parts() const { return parts_; }
  std::size_t size() const { return parts_.size(); }
  const std::string& part(std::size_t hierarchy_idx) const { return parts_.at(hierarchy_idx); }

  /// Canonical "<...>" form; equal foci have equal names.
  std::string name() const;

  /// True if every part is a hierarchy root ("/Code" etc.).
  bool is_whole_program() const;

  /// Depth sum across hierarchies (whole program = 0); used to order
  /// sibling expansions and as a specificity measure.
  int total_depth(const ResourceDb& db) const;

  /// All foci reachable by moving down exactly one edge in exactly one
  /// hierarchy (the paper's "refinement"). Parts whose resources have no
  /// children contribute nothing.
  std::vector<Focus> refinements(const ResourceDb& db) const;

  /// Replace the part for hierarchy `idx` (used by the resource mapper).
  Focus with_part(std::size_t idx, std::string part) const;

  /// True if `other` selects a subset of this focus: every part of `other`
  /// is equal to or below the corresponding part of this focus.
  bool contains(const Focus& other) const;

  bool operator==(const Focus& other) const { return parts_ == other.parts_; }

 private:
  std::vector<std::string> parts_;
};

}  // namespace histpc::resources
