#include "resources/resource_db.h"

#include <stdexcept>

#include "util/strings.h"

namespace histpc::resources {

ResourceDb::ResourceDb(const ResourceDb& other) {
  hierarchies_.reserve(other.hierarchies_.size());
  for (const auto& h : other.hierarchies_)
    hierarchies_.push_back(std::make_unique<ResourceHierarchy>(*h));
}

ResourceDb& ResourceDb::operator=(const ResourceDb& other) {
  if (this != &other) {
    ResourceDb copy(other);
    hierarchies_ = std::move(copy.hierarchies_);
  }
  return *this;
}

ResourceDb ResourceDb::with_standard_hierarchies() {
  ResourceDb db;
  db.add_hierarchy(kCodeHierarchy);
  db.add_hierarchy(kMachineHierarchy);
  db.add_hierarchy(kProcessHierarchy);
  db.add_hierarchy(kSyncObjectHierarchy);
  return db;
}

ResourceHierarchy& ResourceDb::add_hierarchy(std::string_view name) {
  if (int idx = hierarchy_index(name); idx >= 0) return *hierarchies_[static_cast<std::size_t>(idx)];
  hierarchies_.push_back(std::make_unique<ResourceHierarchy>(std::string(name)));
  return *hierarchies_.back();
}

int ResourceDb::hierarchy_index(std::string_view name) const {
  for (std::size_t i = 0; i < hierarchies_.size(); ++i)
    if (hierarchies_[i]->name() == name) return static_cast<int>(i);
  return -1;
}

ResourceHierarchy& ResourceDb::hierarchy(std::string_view name) {
  int idx = hierarchy_index(name);
  if (idx < 0) throw std::out_of_range("no such hierarchy: " + std::string(name));
  return *hierarchies_[static_cast<std::size_t>(idx)];
}

const ResourceHierarchy& ResourceDb::hierarchy(std::string_view name) const {
  int idx = hierarchy_index(name);
  if (idx < 0) throw std::out_of_range("no such hierarchy: " + std::string(name));
  return *hierarchies_[static_cast<std::size_t>(idx)];
}

ResourceId ResourceDb::add_resource(std::string_view full_name) {
  auto parts = util::split_view(full_name, '/');
  if (parts.size() < 2 || !parts[0].empty() || parts[1].empty())
    throw std::invalid_argument("bad resource name: " + std::string(full_name));
  return add_hierarchy(parts[1]).add_path(full_name);
}

bool ResourceDb::contains(std::string_view full_name) const {
  auto parts = util::split_view(full_name, '/');
  if (parts.size() < 2 || !parts[0].empty()) return false;
  int idx = hierarchy_index(parts[1]);
  if (idx < 0) return false;
  return hierarchies_[static_cast<std::size_t>(idx)]->contains(full_name);
}

std::vector<std::string> ResourceDb::all_resource_names() const {
  std::vector<std::string> out;
  for (const auto& h : hierarchies_)
    for (ResourceId id : h->preorder()) out.push_back(h->node(id).full_name);
  return out;
}

util::Json ResourceDb::to_json() const {
  util::Json j = util::Json::object();
  for (const auto& h : hierarchies_) {
    util::Json arr = util::Json::array();
    for (ResourceId id : h->preorder()) {
      if (id == h->root()) continue;  // the root is implied by the key
      arr.push_back(h->node(id).full_name);
    }
    j[h->name()] = std::move(arr);
  }
  return j;
}

ResourceDb ResourceDb::from_json(const util::Json& j) {
  ResourceDb db;
  for (const auto& [name, arr] : j.as_object()) {
    db.add_hierarchy(name);
    for (const auto& res : arr.as_array()) db.add_resource(res.as_string());
  }
  return db;
}

}  // namespace histpc::resources
