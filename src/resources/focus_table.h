// FocusTable: an append-only interner turning canonical foci into dense
// 32-bit FocusIds.
//
// The Performance Consultant's refinement loop creates, dedupes, and
// compares foci at every candidate; as vectors of part strings that means
// re-hashing and re-copying long resource paths per candidate. The table
// stores each distinct focus once (one PartId per hierarchy) and memoizes
// the expensive derived forms — canonical name, parse result, refinement
// list — so SHG expansion and directive lookups become integer arithmetic.
// The string-based Focus operations survive unchanged as the
// property-tested oracle (tests/resources_test.cpp, tests/
// focus_intern_test.cpp), mirroring the metric-engine and directive-index
// scan-vs-index pattern.
//
// Ownership and lifetime (see docs/architecture.md):
//  * The table snapshots the db's ResourceHierarchy pointers at
//    construction. The hierarchies must be fully built first and must
//    outlive the table; the ResourceDb object itself may move (its
//    hierarchies are heap-allocated and stable).
//  * The table is internally synchronized and strictly append-only: ids
//    are never invalidated, returned references (names, refinement lists)
//    are stable for the table's lifetime, and concurrent readers/interners
//    are safe — the parallel variant runner shares one table across
//    DiagnosisSession variants.
//
// "Foreign" parts: a probe focus can name a resource absent from the db
// (a hypothesis's implicit SyncObject scope, e.g. "/SyncObject/Message",
// when the trace recorded no such objects). Such parts get PartIds at or
// above kForeignPartBase, backed by a side string table; they have no
// children and contribute zero depth, exactly like the string path's
// find() == kNoResource handling.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "resources/focus.h"
#include "resources/resource_db.h"

namespace histpc::resources {

/// Dense id of an interned focus; stable for the table's lifetime.
using FocusId = std::int32_t;
inline constexpr FocusId kNoFocus = -1;

/// Id of one focus part within its hierarchy: the ResourceId for real
/// resources, >= kForeignPartBase for parts naming resources absent from
/// the db.
using PartId = std::int32_t;
inline constexpr PartId kNoPart = -1;
inline constexpr PartId kForeignPartBase = 1 << 30;

class FocusTable {
 public:
  /// Snapshots `db`'s hierarchies. The hierarchies must be fully built and
  /// must outlive the table (TraceView builds its db in its constructor
  /// and never grows it afterwards).
  explicit FocusTable(const ResourceDb& db);

  FocusTable(const FocusTable&) = delete;
  FocusTable& operator=(const FocusTable&) = delete;

  std::size_t num_hierarchies() const { return hiers_.size(); }

  /// The snapshotted (immutable) hierarchy for index `idx`.
  const ResourceHierarchy& hierarchy(std::size_t idx) const { return *hiers_.at(idx).tree; }

  /// The unconstrained focus (every part a hierarchy root); always id 0.
  FocusId whole_program() const { return 0; }

  /// Intern a string-based focus (one part per hierarchy, db order).
  /// Throws std::invalid_argument on a part-count mismatch.
  FocusId intern(const Focus& focus);

  /// The focus `id` with hierarchy `hierarchy_idx`'s part replaced —
  /// Focus::with_part without the string vector copy.
  FocusId with_part(FocusId id, std::size_t hierarchy_idx, PartId part);

  /// Focus::parse with resource validation, memoized by input text
  /// (successes only). Same acceptance, defaulting, and diagnostics as
  /// Focus::parse(text, db, /*validate_resources=*/true, error).
  std::optional<FocusId> parse(std::string_view text, std::string* error = nullptr);

  /// Canonical "<...>" name, built once per focus on first request. The
  /// reference is stable. Counted by names_built() so tests can assert
  /// counters-only searches never materialize names.
  const std::string& name(FocusId id) const;

  /// Materialize the string-based equivalent (for filter compilation and
  /// oracle comparisons). Does not build or count the canonical name.
  Focus to_focus(FocusId id) const;

  PartId part(FocusId id, std::size_t hierarchy_idx) const;

  /// PartId for a part full name, interning a foreign id if the resource
  /// is absent from the hierarchy.
  PartId part_id(std::size_t hierarchy_idx, std::string_view full_name);

  const std::string& part_name(std::size_t hierarchy_idx, PartId part) const;

  /// The underlying ResourceId, or kNoResource for foreign parts.
  static ResourceId part_resource(PartId part) {
    return part >= kForeignPartBase ? kNoResource : part;
  }

  /// Path depth below the hierarchy root ("/Code" = 0, "/Code/m" = 1),
  /// from the tree for real parts and from the name for foreign ones.
  int part_depth(std::size_t hierarchy_idx, PartId part) const;

  /// True when `outer`'s part name is a path prefix of `inner`'s
  /// (util::is_path_prefix semantics: equal or ancestor).
  bool part_within(std::size_t hierarchy_idx, PartId inner, PartId outer) const;

  /// All one-edge refinements of `id`, in Focus::refinements order
  /// (hierarchy order, child order). Built once; the reference is stable.
  const std::vector<FocusId>& refinements(FocusId id);

  bool is_whole_program(FocusId id) const;
  int total_depth(FocusId id) const;

  /// Focus::contains over ids: every part of `inner` equal to or below the
  /// corresponding part of `outer`.
  bool contains(FocusId outer, FocusId inner) const;

  /// Number of interned foci.
  std::size_t size() const;
  /// Number of canonical names materialized (telemetry: counters-only
  /// searches should keep this at zero until results are rendered).
  std::size_t names_built() const;

 private:
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct TransparentEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  struct Hier {
    const ResourceHierarchy* tree = nullptr;
    /// Foreign part names in id order (deque: stable references).
    std::deque<std::string> foreign_names;
    std::unordered_map<std::string, PartId, TransparentHash, TransparentEq> foreign_ids;
  };

  struct Entry {
    std::vector<PartId> parts;
    int total_depth = 0;
    bool whole = false;
    std::string name;  ///< canonical "<...>", built lazily
    bool name_built = false;
    std::vector<FocusId> refinements;
    bool refinements_built = false;
  };

  struct PartsHash {
    std::size_t operator()(const std::vector<PartId>& parts) const {
      std::size_t h = 0xcbf29ce484222325ull;
      for (PartId p : parts) {
        h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(p));
        h *= 0x100000001b3ull;
      }
      return h;
    }
  };

  // _locked helpers assume mu_ is held (the mutex is not recursive).
  FocusId intern_parts_locked(std::vector<PartId> parts);
  PartId part_id_locked(std::size_t hierarchy_idx, std::string_view full_name);
  const std::string& part_name_locked(std::size_t hierarchy_idx, PartId part) const;
  int part_depth_locked(std::size_t hierarchy_idx, PartId part) const;
  const Entry& entry(FocusId id) const;

  std::vector<Hier> hiers_;
  std::unordered_map<std::string, int, TransparentHash, TransparentEq> hier_index_;
  /// Arena: deque keeps Entry references stable across growth. Mutable so
  /// name() can memoize under the lock from const context.
  mutable std::deque<Entry> entries_;
  std::unordered_map<std::vector<PartId>, FocusId, PartsHash> dedup_;
  std::unordered_map<std::string, FocusId, TransparentHash, TransparentEq> parse_memo_;
  mutable std::size_t names_built_ = 0;
  /// One lock for every operation: all ops are short, and uniform locking
  /// keeps concurrent interning (parallel variant runs) strictly safe.
  mutable std::mutex mu_;
};

}  // namespace histpc::resources
