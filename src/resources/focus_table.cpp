#include "resources/focus_table.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace histpc::resources {

FocusTable::FocusTable(const ResourceDb& db) {
  hiers_.reserve(db.num_hierarchies());
  for (std::size_t i = 0; i < db.num_hierarchies(); ++i) {
    Hier h;
    h.tree = &db.hierarchy(i);
    hier_index_.emplace(h.tree->name(), static_cast<int>(i));
    hiers_.push_back(std::move(h));
  }
  // Intern the whole-program focus as id 0 (every part the hierarchy root).
  std::lock_guard<std::mutex> lock(mu_);
  intern_parts_locked(std::vector<PartId>(hiers_.size(), 0));
}

const FocusTable::Entry& FocusTable::entry(FocusId id) const {
  return entries_.at(static_cast<std::size_t>(id));
}

FocusId FocusTable::intern_parts_locked(std::vector<PartId> parts) {
  if (auto it = dedup_.find(parts); it != dedup_.end()) return it->second;
  Entry e;
  e.total_depth = 0;
  e.whole = true;
  for (std::size_t h = 0; h < parts.size(); ++h) {
    const PartId p = parts[h];
    if (p != 0) e.whole = false;
    // Foreign parts contribute nothing, like the string path's
    // find() == kNoResource skip in Focus::total_depth.
    if (part_resource(p) != kNoResource) e.total_depth += hiers_[h].tree->node(p).depth;
  }
  e.parts = parts;
  const FocusId id = static_cast<FocusId>(entries_.size());
  entries_.push_back(std::move(e));
  dedup_.emplace(std::move(parts), id);
  return id;
}

PartId FocusTable::part_id_locked(std::size_t hierarchy_idx, std::string_view full_name) {
  Hier& h = hiers_.at(hierarchy_idx);
  if (ResourceId rid = h.tree->find(full_name); rid != kNoResource) return rid;
  if (auto it = h.foreign_ids.find(full_name); it != h.foreign_ids.end()) return it->second;
  const PartId id = kForeignPartBase + static_cast<PartId>(h.foreign_names.size());
  h.foreign_names.emplace_back(full_name);
  h.foreign_ids.emplace(std::string(full_name), id);
  return id;
}

const std::string& FocusTable::part_name_locked(std::size_t hierarchy_idx,
                                                PartId part) const {
  const Hier& h = hiers_.at(hierarchy_idx);
  if (part >= kForeignPartBase)
    return h.foreign_names.at(static_cast<std::size_t>(part - kForeignPartBase));
  return h.tree->node(part).full_name;
}

int FocusTable::part_depth_locked(std::size_t hierarchy_idx, PartId part) const {
  if (part < kForeignPartBase) return hiers_.at(hierarchy_idx).tree->node(part).depth;
  // Foreign: depth from the path itself ("/SyncObject/Message" = 1), the
  // same value the string-splitting cost model derives.
  const std::string& name = part_name_locked(hierarchy_idx, part);
  return static_cast<int>(std::count(name.begin(), name.end(), '/')) - 1;
}

FocusId FocusTable::intern(const Focus& focus) {
  if (focus.size() != hiers_.size())
    throw std::invalid_argument("FocusTable::intern: focus has " +
                                std::to_string(focus.size()) + " parts, table has " +
                                std::to_string(hiers_.size()) + " hierarchies");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartId> parts(hiers_.size());
  for (std::size_t h = 0; h < hiers_.size(); ++h)
    parts[h] = part_id_locked(h, focus.part(h));
  return intern_parts_locked(std::move(parts));
}

FocusId FocusTable::with_part(FocusId id, std::size_t hierarchy_idx, PartId part) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartId> parts = entry(id).parts;
  parts.at(hierarchy_idx) = part;
  return intern_parts_locked(std::move(parts));
}

std::optional<FocusId> FocusTable::parse(std::string_view text, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = parse_memo_.find(text); it != parse_memo_.end()) return it->second;
  const std::string_view original = text;

  // Mirrors Focus::parse(text, db, /*validate_resources=*/true, error)
  // exactly — same acceptance, same defaulting, same diagnostics; the
  // string path is the property-tested oracle (tests/resources_test.cpp).
  auto fail = [&](std::string message) -> std::optional<FocusId> {
    if (error) *error = std::move(message);
    return std::nullopt;
  };
  text = util::trim(text);
  if (!text.empty() && text.front() == '<') {
    if (text.back() != '>')
      return fail("unterminated '<' in focus '" + std::string(text) + "'");
    text = text.substr(1, text.size() - 2);
  }
  std::vector<PartId> parts(hiers_.size(), 0);  // unmentioned = hierarchy roots
  std::vector<bool> seen(hiers_.size(), false);
  for (auto raw : util::split_view(text, ',')) {
    auto part = util::trim(raw);
    if (part.empty()) continue;
    auto comps = util::split_view(part, '/');
    if (comps.size() < 2 || !comps[0].empty())
      return fail("malformed part '" + std::string(part) +
                  "': expected /Hierarchy[/resource...]");
    auto it = hier_index_.find(comps[1]);
    if (it == hier_index_.end())
      return fail("part '" + std::string(part) + "' names unknown hierarchy '" +
                  std::string(comps[1]) + "'");
    const auto uidx = static_cast<std::size_t>(it->second);
    if (seen[uidx])
      return fail("duplicate part for hierarchy '" + std::string(comps[1]) + "': '" +
                  std::string(part) + "'");
    const ResourceId rid = hiers_[uidx].tree->find(part);
    if (rid == kNoResource)
      return fail("part '" + std::string(part) +
                  "' names a resource missing from hierarchy '" + std::string(comps[1]) +
                  "'");
    parts[uidx] = rid;
    seen[uidx] = true;
  }
  const FocusId id = intern_parts_locked(std::move(parts));
  parse_memo_.emplace(std::string(original), id);
  return id;
}

const std::string& FocusTable::name(FocusId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_.at(static_cast<std::size_t>(id));
  if (!e.name_built) {
    std::size_t len = 2 + (e.parts.empty() ? 0 : e.parts.size() - 1);
    for (std::size_t h = 0; h < e.parts.size(); ++h)
      len += part_name_locked(h, e.parts[h]).size();
    e.name.reserve(len);
    e.name.push_back('<');
    for (std::size_t h = 0; h < e.parts.size(); ++h) {
      if (h > 0) e.name.push_back(',');
      e.name.append(part_name_locked(h, e.parts[h]));
    }
    e.name.push_back('>');
    e.name_built = true;
    ++names_built_;
  }
  return e.name;
}

Focus FocusTable::to_focus(FocusId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry& e = entry(id);
  std::vector<std::string> parts;
  parts.reserve(e.parts.size());
  for (std::size_t h = 0; h < e.parts.size(); ++h)
    parts.push_back(part_name_locked(h, e.parts[h]));
  return Focus(std::move(parts));
}

PartId FocusTable::part(FocusId id, std::size_t hierarchy_idx) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry(id).parts.at(hierarchy_idx);
}

PartId FocusTable::part_id(std::size_t hierarchy_idx, std::string_view full_name) {
  std::lock_guard<std::mutex> lock(mu_);
  return part_id_locked(hierarchy_idx, full_name);
}

const std::string& FocusTable::part_name(std::size_t hierarchy_idx, PartId part) const {
  std::lock_guard<std::mutex> lock(mu_);
  return part_name_locked(hierarchy_idx, part);
}

int FocusTable::part_depth(std::size_t hierarchy_idx, PartId part) const {
  std::lock_guard<std::mutex> lock(mu_);
  return part_depth_locked(hierarchy_idx, part);
}

bool FocusTable::part_within(std::size_t hierarchy_idx, PartId inner, PartId outer) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (inner == outer) return true;
  if (inner < kForeignPartBase && outer < kForeignPartBase)
    return hiers_.at(hierarchy_idx).tree->is_ancestor_or_self(outer, inner);
  // A foreign part on either side: fall back to the path-prefix test the
  // string path uses.
  return util::is_path_prefix(part_name_locked(hierarchy_idx, outer),
                              part_name_locked(hierarchy_idx, inner));
}

const std::vector<FocusId>& FocusTable::refinements(FocusId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // Safe to take a reference before appending: entries_ is a deque.
  Entry& e = entries_.at(static_cast<std::size_t>(id));
  if (!e.refinements_built) {
    // Exactly Focus::refinements order: hierarchies in db order, children
    // in node order; foreign parts (find() == kNoResource there) skipped.
    std::vector<FocusId> refs;
    const std::vector<PartId> parts = e.parts;  // intern below may not alias e
    for (std::size_t h = 0; h < parts.size(); ++h) {
      if (parts[h] >= kForeignPartBase) continue;
      for (ResourceId child : hiers_[h].tree->node(parts[h]).children) {
        std::vector<PartId> child_parts = parts;
        child_parts[h] = child;
        refs.push_back(intern_parts_locked(std::move(child_parts)));
      }
    }
    e.refinements = std::move(refs);
    e.refinements_built = true;
  }
  return e.refinements;
}

bool FocusTable::is_whole_program(FocusId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry(id).whole;
}

int FocusTable::total_depth(FocusId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry(id).total_depth;
}

bool FocusTable::contains(FocusId outer, FocusId inner) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry& o = entry(outer);
  const Entry& i = entry(inner);
  for (std::size_t h = 0; h < o.parts.size(); ++h) {
    const PartId op = o.parts[h];
    const PartId ip = i.parts[h];
    if (op == ip) continue;
    if (op < kForeignPartBase && ip < kForeignPartBase) {
      if (!hiers_[h].tree->is_ancestor_or_self(op, ip)) return false;
    } else if (!util::is_path_prefix(part_name_locked(h, op), part_name_locked(h, ip))) {
      return false;
    }
  }
  return true;
}

std::size_t FocusTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t FocusTable::names_built() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_built_;
}

}  // namespace histpc::resources
