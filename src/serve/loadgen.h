// Open-loop Poisson load generator for `histpc serve`.
//
// Arrivals are drawn once, up front, from an exponential inter-arrival
// distribution at the offered rate (deterministic per seed — util::Rng),
// and each sender thread fires its share of the schedule at the scheduled
// wall-clock instants regardless of how the previous requests fared.
// Latency is measured from the *scheduled* arrival, not the actual send,
// so queueing delay at an overloaded server shows up in the tail instead
// of being silently absorbed (the coordinated-omission mistake a
// closed-loop "send, wait, repeat" generator makes).
//
// Concurrency is bounded by `connections` sender threads, each opening one
// connection per request — at extreme offered rates the generator itself
// saturates, which the achieved-vs-offered gap in the LoadPoint makes
// visible rather than hiding.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.h"

namespace histpc::serve {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string target = "/diagnose";
  std::string body;  ///< JSON body sent with every request
  double rps = 50.0;
  double duration_seconds = 2.0;
  int connections = 4;  ///< sender threads (concurrency bound)
  std::uint64_t seed = 1;
  double timeout_seconds = 30.0;
};

/// One measured operating point of the saturation curve.
struct LoadPoint {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  ///< 200s per wall second
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;      ///< 200 responses
  std::uint64_t shed = 0;    ///< 429 responses
  std::uint64_t errors = 0;  ///< connect failures + other statuses
  double p50_ms = 0.0;       ///< over ok responses, scheduled-arrival-to-done
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double shed_rate = 0.0;  ///< shed / sent
  double wall_seconds = 0.0;

  util::Json to_json() const;
};

/// Drive one operating point against a live server. Blocks for roughly
/// `duration_seconds` plus the tail of in-flight requests.
LoadPoint run_load(const LoadGenOptions& options);

}  // namespace histpc::serve
