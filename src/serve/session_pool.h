// SessionPool: shared read-mostly diagnosis state behind `histpc serve`.
//
// The one-shot CLI pays the full pipeline on every invocation: record the
// program, load-or-simulate the trace, build the TraceView, then search.
// The pool keeps the expensive, immutable prefix of that pipeline resident
// — one DiagnosisSession (trace + TraceView + interned FocusTable) per
// distinct (app, duration, node_base), built once and shared by every
// subsequent request — so a warm request is nothing but a
// PerformanceConsultant run over an already-built view. This is exactly
// the variant-runner concurrency model (parallel consultants over one
// TraceView; the FocusTable is internally synchronized), generalized from
// "variants of one session" to "many independent sessions".
//
// Determinism makes a second reuse level sound: the simulator and the
// search are bit-reproducible, so identical diagnosis requests have
// identical answers, and the pool memoizes the serialized result keyed by
// the request's deterministic fields (the paper's thesis — reuse of
// historical performance results — applied to the server's own work).
// Deadline-limited requests are never cached: a wall-clock budget makes
// the *extent* of the search timing-dependent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/session.h"
#include "pc/consultant.h"
#include "telemetry/registry.h"
#include "util/json.h"

namespace histpc::serve {

/// One /diagnose request, decoded. Defaults mirror the CLI's `run`.
struct DiagnoseRequest {
  std::string app;
  double duration = 1500.0;
  int node_base = 1;
  double threshold = -1.0;   ///< <= 0: hypothesis defaults
  double cost_limit = 0.05;
  int search_threads = 1;
  std::string directives_text;  ///< DirectiveSet::serialize() format
  double deadline_ms = 0.0;     ///< > 0: wall budget for the search
  bool want_shg = false;
  bool use_result_cache = true;  ///< request opt-out ("no_result_cache")

  /// Decode a request body; throws util::JsonError naming the bad field.
  static DiagnoseRequest from_json(const util::Json& body);

  /// Canonical key over the fields that determine the diagnosis result.
  /// search_threads is deliberately excluded: conclusions are
  /// bit-identical for every thread count (property-tested), so all
  /// thread counts share one cache entry.
  std::string cache_key() const;
};

/// The deterministic "result" object for a diagnosis: app, bottlenecks,
/// stats, and the deterministic telemetry counts — everything that must be
/// bit-identical between a served request and a one-shot CLI run. Wall-
/// clock-dependent fields (phase timings, speculation effectiveness) are
/// excluded by construction. The bit-identity oracle test serializes its
/// locally-computed result through this same function.
util::Json diagnose_result_json(const std::string& app, const pc::DiagnosisResult& result,
                                const std::string& shg_render);

struct DiagnoseReply {
  util::Json result;             ///< diagnose_result_json(...)
  bool warm_view = false;        ///< served from an already-built session
  bool result_cache_hit = false;
  /// Per-request telemetry: the consultant's pc.* registry plus the
  /// serve.request timer — the payload of this request's PerfRecord.
  telemetry::Registry registry;
};

class SessionPool {
 public:
  /// `trace_cache_dir` (possibly empty = no snapshot cache) is handed to
  /// every session the pool builds; `result_cache` master-switches the
  /// memoized-result layer (requests can still opt out individually).
  SessionPool(std::string trace_cache_dir, bool result_cache);

  /// Execute one diagnosis. Thread-safe; concurrent callers share warm
  /// state. Throws util::JsonError (bad directives), std::invalid_argument
  /// (unknown app), or std::runtime_error (simulation failure).
  DiagnoseReply diagnose(const DiagnoseRequest& request);

  std::uint64_t result_cache_hits() const { return result_cache_hits_.load(); }
  std::uint64_t warm_hits() const { return warm_hits_.load(); }
  std::uint64_t cold_builds() const { return cold_builds_.load(); }

 private:
  /// One resident app execution. `ready` flips (release) after `session`
  /// is fully built inside the call_once, so readers can test warmth
  /// without the pool lock.
  struct Prepared {
    std::once_flag once;
    std::unique_ptr<core::DiagnosisSession> session;
    std::exception_ptr error;
    std::atomic<bool> ready{false};
  };

  /// Get-or-build the resident session for the request's (app, duration,
  /// node_base). Build is single-flight (call_once); a failed build is
  /// evicted so a later request can retry, and the failure is rethrown.
  std::shared_ptr<Prepared> prepared_for(const DiagnoseRequest& request, bool* warm);

  std::string trace_cache_dir_;
  bool result_cache_enabled_;
  std::mutex mu_;  ///< guards sessions_ and results_
  std::map<std::string, std::shared_ptr<Prepared>> sessions_;
  std::map<std::string, util::Json> results_;  ///< cache_key -> result object
  std::atomic<std::uint64_t> result_cache_hits_{0};
  std::atomic<std::uint64_t> warm_hits_{0};
  std::atomic<std::uint64_t> cold_builds_{0};
};

}  // namespace histpc::serve
