#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "serve/http.h"
#include "util/rng.h"

namespace histpc::serve {

namespace {

/// Exact quantile over a sorted sample (linear interpolation between
/// order statistics). 0 on empty input.
double quantile_ms(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

util::Json LoadPoint::to_json() const {
  util::Json j = util::Json::object();
  j["offered_rps"] = offered_rps;
  j["achieved_rps"] = achieved_rps;
  j["sent"] = sent;
  j["ok"] = ok;
  j["shed"] = shed;
  j["errors"] = errors;
  j["p50_ms"] = p50_ms;
  j["p99_ms"] = p99_ms;
  j["max_ms"] = max_ms;
  j["shed_rate"] = shed_rate;
  j["wall_seconds"] = wall_seconds;
  return j;
}

LoadPoint run_load(const LoadGenOptions& options) {
  // The whole arrival schedule is drawn before the first request:
  // exponential gaps at the offered rate, deterministic per seed.
  util::Rng rng(options.seed);
  std::vector<double> arrivals;
  double t = 0.0;
  while (true) {
    double u = rng.next_double();
    if (u >= 1.0) u = 0.0;
    t += -std::log(1.0 - u) / options.rps;
    if (t >= options.duration_seconds) break;
    arrivals.push_back(t);
  }

  const int threads = std::max(1, options.connections);
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(threads), 0);
  std::vector<std::uint64_t> ok(static_cast<std::size_t>(threads), 0);
  std::vector<std::uint64_t> shed(static_cast<std::size_t>(threads), 0);
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(threads), 0);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  senders.reserve(static_cast<std::size_t>(threads));
  for (int k = 0; k < threads; ++k) {
    senders.emplace_back([&, k] {
      const auto idx = static_cast<std::size_t>(k);
      // Deterministic round-robin partition of the schedule: sender k owns
      // arrivals k, k+threads, ... A sender running late fires its overdue
      // arrivals back to back (open loop), and the delay lands in the
      // measured latency.
      for (std::size_t i = idx; i < arrivals.size(); i += static_cast<std::size_t>(threads)) {
        const auto scheduled =
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(scheduled);
        ++sent[idx];
        const auto res = http_post(options.host, options.port, options.target, options.body,
                                   options.timeout_seconds);
        const double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      scheduled)
                .count();
        if (!res) {
          ++errors[idx];
        } else if (res->status == 429) {
          ++shed[idx];
        } else if (res->status == 200) {
          ++ok[idx];
          latencies[idx].push_back(ms);
        } else {
          ++errors[idx];
        }
      }
    });
  }
  for (std::thread& s : senders) s.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  LoadPoint point;
  point.offered_rps = options.rps;
  point.wall_seconds = wall;
  std::vector<double> all;
  for (std::size_t k = 0; k < latencies.size(); ++k) {
    point.sent += sent[k];
    point.ok += ok[k];
    point.shed += shed[k];
    point.errors += errors[k];
    all.insert(all.end(), latencies[k].begin(), latencies[k].end());
  }
  std::sort(all.begin(), all.end());
  point.achieved_rps = wall > 0.0 ? static_cast<double>(point.ok) / wall : 0.0;
  point.p50_ms = quantile_ms(all, 0.50);
  point.p99_ms = quantile_ms(all, 0.99);
  point.max_ms = all.empty() ? 0.0 : all.back();
  point.shed_rate =
      point.sent > 0 ? static_cast<double>(point.shed) / static_cast<double>(point.sent) : 0.0;
  return point;
}

}  // namespace histpc::serve
