// Minimal HTTP/1.1 framing over POSIX sockets for `histpc serve`.
//
// The server speaks just enough of the protocol for a JSON request/response
// service with no external dependencies: one request per connection
// (`Connection: close` both ways), a request line + headers + optional
// Content-Length body in, a status line + JSON body out. Deliberately not
// a general HTTP implementation — no chunked encoding, no keep-alive, no
// TLS — because the serving story it supports (localhost diagnosis
// requests, load-generator clients) never needs them, and every line of
// protocol code here is a line the tests must pin down.
//
// The tiny client half (http_get / http_post) exists for `histpc
// bench-client`, the load generator, and the tests; it talks to numeric
// IPv4 addresses ("localhost" is rewritten to 127.0.0.1).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace histpc::serve {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercased by the parser)
  std::string target;  ///< path as sent, e.g. "/diagnose"
  std::string body;
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
};

/// Read one request from a connected socket. On failure returns nullopt
/// and fills `status` (400 malformed framing, 408 read timeout/EOF before
/// a complete request, 413 declared body over `max_body`) and `error`
/// (one human-readable line). Accepts both CRLF and bare-LF line endings.
std::optional<HttpRequest> read_http_request(int fd, std::size_t max_body, int* status,
                                             std::string* error);

/// Serialize status line + headers + body, ready for write_all().
std::string serialize_response(const HttpResponse& response);

/// The canonical reason phrase ("OK", "Too Many Requests", ...).
std::string_view status_reason(int status);

/// Loop send() until everything is written (MSG_NOSIGNAL: a dead peer
/// yields false, never SIGPIPE). False on any error.
bool write_all(int fd, std::string_view data);

struct HttpClientResult {
  int status = 0;
  std::string body;
};

/// One-shot client request: connect, send, read to EOF, parse. nullopt on
/// connect/IO/parse failure. `timeout_seconds` bounds both send and recv.
std::optional<HttpClientResult> http_request(const std::string& host, int port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body,
                                             double timeout_seconds = 30.0);

inline std::optional<HttpClientResult> http_get(const std::string& host, int port,
                                                const std::string& target,
                                                double timeout_seconds = 30.0) {
  return http_request(host, port, "GET", target, "", timeout_seconds);
}

inline std::optional<HttpClientResult> http_post(const std::string& host, int port,
                                                 const std::string& target,
                                                 const std::string& body,
                                                 double timeout_seconds = 30.0) {
  return http_request(host, port, "POST", target, body, timeout_seconds);
}

}  // namespace histpc::serve
