#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>

namespace histpc::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Append whatever is available; false on EOF, error, or timeout.
bool recv_some(int fd, std::string& buf) {
  char tmp[4096];
  const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
  if (n <= 0) return false;
  buf.append(tmp, static_cast<std::size_t>(n));
  return true;
}

/// Locate the blank line ending the header block; supports CRLF and LF.
/// Returns npos when incomplete; `body_start` is set past the separator.
std::size_t find_header_end(const std::string& buf, std::size_t* body_start) {
  const std::size_t crlf = buf.find("\r\n\r\n");
  const std::size_t lf = buf.find("\n\n");
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    *body_start = crlf + 4;
    return crlf;
  }
  if (lf != std::string::npos) {
    *body_start = lf + 2;
    return lf;
  }
  return std::string::npos;
}

bool fail(int code, std::string message, int* status, std::string* error) {
  if (status) *status = code;
  if (error) *error = std::move(message);
  return false;
}

/// Parse "METHOD SP target SP HTTP/x.y" + header lines out of the header
/// block. False (with status/error filled) on malformed framing.
bool parse_head(std::string_view head, HttpRequest* out, int* status, std::string* error) {
  const std::size_t line_end = std::min(head.find('\n'), head.size());
  std::string_view line = trim(head.substr(0, line_end));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos)
    return fail(400, "malformed request line", status, error);
  out->method = std::string(line.substr(0, sp1));
  std::transform(out->method.begin(), out->method.end(), out->method.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  out->target = std::string(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  if (out->target.empty() || out->target[0] != '/')
    return fail(400, "request target must be an absolute path", status, error);

  std::size_t pos = line_end == head.size() ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t next = head.find('\n', pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view raw = trim(head.substr(pos, next - pos));
    pos = next + 1;
    if (raw.empty()) continue;
    const std::size_t colon = raw.find(':');
    if (colon == std::string_view::npos)
      return fail(400, "malformed header line", status, error);
    out->headers[lower(trim(raw.substr(0, colon)))] = std::string(trim(raw.substr(colon + 1)));
  }
  return true;
}

}  // namespace

std::optional<HttpRequest> read_http_request(int fd, std::size_t max_body, int* status,
                                             std::string* error) {
  std::string buf;
  std::size_t body_start = 0;
  std::size_t head_end = std::string::npos;
  while ((head_end = find_header_end(buf, &body_start)) == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      fail(400, "request header block too large", status, error);
      return std::nullopt;
    }
    if (!recv_some(fd, buf)) {
      fail(408, buf.empty() ? "empty request" : "connection closed mid-request", status,
           error);
      return std::nullopt;
    }
  }

  HttpRequest req;
  if (!parse_head(std::string_view(buf).substr(0, head_end), &req, status, error))
    return std::nullopt;

  std::size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(it->second));
    } catch (const std::exception&) {
      fail(400, "unparseable Content-Length", status, error);
      return std::nullopt;
    }
  }
  if (content_length > max_body) {
    fail(413,
         "request body of " + std::to_string(content_length) + " bytes exceeds the " +
             std::to_string(max_body) + "-byte limit",
         status, error);
    return std::nullopt;
  }
  while (buf.size() - body_start < content_length) {
    if (!recv_some(fd, buf)) {
      fail(408, "connection closed mid-body", status, error);
      return std::nullopt;
    }
  }
  req.body = buf.substr(body_start, content_length);
  return req;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += status_reason(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<HttpClientResult> http_request(const std::string& host, int port,
                                             const std::string& method,
                                             const std::string& target,
                                             const std::string& body,
                                             double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>((timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" || host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string req = method + " " + target + " HTTP/1.1\r\nHost: " + numeric +
                    "\r\nContent-Type: application/json\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  if (!write_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }

  // Connection: close framing — the response is everything until EOF.
  std::string buf;
  while (recv_some(fd, buf)) {
  }
  ::close(fd);

  // Status line: "HTTP/1.1 NNN Reason".
  const std::size_t sp = buf.find(' ');
  if (sp == std::string::npos || buf.size() < sp + 4) return std::nullopt;
  HttpClientResult result;
  try {
    result.status = std::stoi(buf.substr(sp + 1, 3));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  std::size_t body_start = 0;
  if (find_header_end(buf, &body_start) == std::string::npos) return std::nullopt;
  result.body = buf.substr(body_start);
  return result;
}

}  // namespace histpc::serve
