// DiagnosisServer: the long-running `histpc serve` process.
//
// A hand-rolled HTTP/1.1 endpoint (serve/http.h) in front of a SessionPool
// (serve/session_pool.h), an ExperimentStore, and a perf log:
//
//   POST /diagnose     run a diagnosis (DiagnoseRequest body); the reply
//                      is {"result": <deterministic>, "server": <wall/warm>}
//   POST /list         index summaries ({"app","version","machine","scenario"})
//   POST /perf-report  latest PerfRecord of {"app": NAME} from the store's
//                      perf log (what `histpc perf-report --app` renders)
//   POST /debug/sleep  hold a worker for {"ms": N} (admission-control tests)
//   POST /shutdown     ask the server to stop (wait() returns)
//   GET  /healthz      {"ok": true}
//   GET  /stats        admission/cache counters
//
// Threading: one acceptor thread plus a util::ThreadPool of workers. Each
// accepted connection carries exactly one request. Admission control is a
// single in-flight counter — a connection is admitted only while fewer
// than queue_depth requests are queued or executing; past that the
// acceptor writes an immediate 429 and closes (load shedding), so a
// saturated server keeps answering cheaply instead of building an
// unbounded backlog. A request's "deadline_ms" propagates into the
// consultant loop as PcConfig::wall_budget_seconds.
//
// Every /diagnose appends a PerfRecord (kind="serve") to the store's perf
// log, so `histpc perf-diff --app serve --store DIR` covers the server
// path with the same MAD-band regression detection as everything else.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "history/store.h"
#include "serve/http.h"
#include "serve/session_pool.h"
#include "telemetry/perf_record.h"
#include "util/thread_pool.h"

namespace histpc::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";  ///< numeric IPv4 (or "localhost")
  int port = 0;                    ///< 0 = ephemeral; see DiagnosisServer::port()
  int threads = 4;                 ///< worker pool size (0 = hardware threads)
  /// Admission bound: maximum requests queued-or-executing before the
  /// acceptor sheds with 429.
  int queue_depth = 64;
  std::size_t max_body_bytes = 1 << 20;
  std::string store_dir = ".histpc";
  std::string trace_cache_dir = ".histpc/trace-cache";  ///< empty = no cache
  bool result_cache = true;  ///< memoize deterministic diagnosis results
  bool perf_log = true;      ///< append a kind="serve" PerfRecord per diagnosis
  /// Perf-log file; empty = `<store_dir>/perf-log/serve.jsonl`.
  std::string perf_log_path;
};

/// Monotonic counters snapshot (stats endpoint and tests).
struct ServeStats {
  std::uint64_t accepted = 0;     ///< connections accepted
  std::uint64_t served = 0;       ///< responses written by workers
  std::uint64_t shed = 0;         ///< 429s written by the acceptor
  std::uint64_t http_errors = 0;  ///< non-2xx worker responses
  std::uint64_t diagnoses = 0;    ///< /diagnose requests completed
  std::uint64_t result_cache_hits = 0;
  std::uint64_t warm_view_hits = 0;
  std::uint64_t cold_builds = 0;
  int in_flight = 0;  ///< queued-or-executing right now
};

class DiagnosisServer {
 public:
  explicit DiagnosisServer(ServeConfig config);
  ~DiagnosisServer();  ///< stop()s if still running

  DiagnosisServer(const DiagnosisServer&) = delete;
  DiagnosisServer& operator=(const DiagnosisServer&) = delete;

  /// Bind + listen + spawn acceptor and workers. Throws std::runtime_error
  /// when the socket cannot be bound.
  void start();

  /// Block until /shutdown is received or stop() is called elsewhere.
  void wait();

  /// Stop accepting, drain in-flight requests, join everything. Idempotent.
  void stop();

  /// The bound port (resolves port 0 after start()).
  int port() const { return port_; }
  const ServeConfig& config() const { return config_; }
  bool running() const { return running_.load(); }
  ServeStats stats() const;

  /// Dispatch one request exactly as the socket path does (the tests and
  /// the bit-identity oracle call this directly; no sockets involved).
  HttpResponse handle(const HttpRequest& request);

 private:
  void accept_loop();
  void handle_connection(int fd);
  HttpResponse handle_diagnose(const util::Json& body);
  HttpResponse handle_list(const util::Json& body) const;
  HttpResponse handle_perf_report(const util::Json& body) const;
  void append_perf_record(const DiagnoseRequest& request, const DiagnoseReply& reply);
  void request_stop();

  ServeConfig config_;
  SessionPool sessions_;
  history::ExperimentStore store_;
  std::unique_ptr<telemetry::PerfLog> perf_log_;
  std::mutex perf_mu_;  ///< serializes perf-log appends across workers

  std::unique_ptr<util::ThreadPool> workers_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> in_flight_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> http_errors_{0};
  std::atomic<std::uint64_t> diagnoses_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace histpc::serve
