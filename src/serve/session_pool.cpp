#include "serve/session_pool.h"

#include <chrono>
#include <utility>

#include "apps/apps.h"
#include "pc/directives.h"

namespace histpc::serve {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

}  // namespace

DiagnoseRequest DiagnoseRequest::from_json(const util::Json& body) {
  if (!body.is_object()) throw util::JsonError("request body must be a JSON object");
  DiagnoseRequest req;
  const util::Json& app = body.at("app");
  if (!app.is_string() || app.as_string().empty())
    throw util::JsonError("field 'app' must be a non-empty string");
  req.app = app.as_string();
  req.duration = body.get_or("duration", req.duration);
  if (req.duration <= 0.0) throw util::JsonError("field 'duration' must be positive");
  req.node_base = static_cast<int>(body.get_or("node_base", static_cast<double>(req.node_base)));
  req.threshold = body.get_or("threshold", req.threshold);
  req.cost_limit = body.get_or("cost_limit", req.cost_limit);
  req.search_threads =
      static_cast<int>(body.get_or("search_threads", static_cast<double>(req.search_threads)));
  if (req.search_threads < 0)
    throw util::JsonError("field 'search_threads' must be non-negative");
  req.directives_text = body.get_or("directives", std::string());
  req.deadline_ms = body.get_or("deadline_ms", 0.0);
  req.want_shg = body.get_or("shg", false);
  req.use_result_cache = !body.get_or("no_result_cache", false);
  return req;
}

std::string DiagnoseRequest::cache_key() const {
  util::Json key = util::Json::object();
  key["app"] = app;
  key["duration"] = duration;
  key["node_base"] = node_base;
  key["threshold"] = threshold;
  key["cost_limit"] = cost_limit;
  key["directives"] = directives_text;
  key["shg"] = want_shg;
  return key.dump();
}

util::Json diagnose_result_json(const std::string& app, const pc::DiagnosisResult& result,
                                const std::string& shg_render) {
  util::Json j = util::Json::object();
  j["app"] = app;

  util::Json bottlenecks = util::Json::array();
  for (const pc::BottleneckReport& b : result.bottlenecks) {
    util::Json o = util::Json::object();
    o["hypothesis"] = b.hypothesis;
    o["focus"] = b.focus;
    o["t_found"] = b.t_found;
    o["fraction"] = b.fraction;
    bottlenecks.push_back(std::move(o));
  }
  j["bottlenecks"] = std::move(bottlenecks);

  util::Json stats = util::Json::object();
  stats["nodes_created"] = result.stats.nodes_created;
  stats["pairs_tested"] = result.stats.pairs_tested;
  stats["pruned_candidates"] = result.stats.pruned_candidates;
  stats["bottlenecks"] = result.stats.bottlenecks;
  stats["end_time"] = result.stats.end_time;
  stats["last_true_time"] = result.stats.last_true_time;
  stats["peak_cost"] = result.stats.peak_cost;
  stats["deadline_hit"] = result.stats.deadline_hit;
  j["stats"] = std::move(stats);

  // Deterministic telemetry counts only: functions of the virtual-time
  // search, identical for every thread count. Wall-clock phase timings and
  // speculation hit rates vary run to run and are deliberately left out.
  util::Json telemetry = util::Json::object();
  telemetry["conclusions_true"] = result.telemetry.conclusions_true;
  telemetry["conclusions_false"] = result.telemetry.conclusions_false;
  telemetry["refinements"] = result.telemetry.refinements;
  telemetry["prune_hits_subtree"] = result.telemetry.prune_hits_subtree;
  telemetry["prune_hits_pair"] = result.telemetry.prune_hits_pair;
  telemetry["priority_seeds"] = result.telemetry.priority_seeds;
  telemetry["cost_gate_engagements"] = result.telemetry.cost_gate_engagements;
  telemetry["peak_cost"] = result.telemetry.peak_cost;
  telemetry["avg_cost"] = result.telemetry.avg_cost;
  j["telemetry"] = std::move(telemetry);

  if (!shg_render.empty()) j["shg"] = shg_render;
  return j;
}

SessionPool::SessionPool(std::string trace_cache_dir, bool result_cache)
    : trace_cache_dir_(std::move(trace_cache_dir)), result_cache_enabled_(result_cache) {}

std::shared_ptr<SessionPool::Prepared> SessionPool::prepared_for(const DiagnoseRequest& request,
                                                                 bool* warm) {
  util::Json key = util::Json::object();
  key["app"] = request.app;
  key["duration"] = request.duration;
  key["node_base"] = request.node_base;
  const std::string key_text = key.dump();

  std::shared_ptr<Prepared> prepared;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Prepared>& slot = sessions_[key_text];
    if (!slot) slot = std::make_shared<Prepared>();
    prepared = slot;
  }
  *warm = prepared->ready.load(std::memory_order_acquire);

  std::call_once(prepared->once, [&] {
    try {
      apps::AppParams params;
      params.target_duration = request.duration;
      params.node_base = request.node_base;
      pc::PcConfig config;
      config.trace_cache_dir = trace_cache_dir_;
      prepared->session =
          std::make_unique<core::DiagnosisSession>(request.app, params, std::move(config));
      prepared->ready.store(true, std::memory_order_release);
      ++cold_builds_;
    } catch (...) {
      prepared->error = std::current_exception();
    }
  });

  if (prepared->error) {
    // Evict so the next request retries (a transient failure — full disk,
    // cache corruption — should not poison the key forever).
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key_text);
    if (it != sessions_.end() && it->second == prepared) sessions_.erase(it);
    std::rethrow_exception(prepared->error);
  }
  if (*warm) ++warm_hits_;
  return prepared;
}

DiagnoseReply SessionPool::diagnose(const DiagnoseRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  DiagnoseReply reply;
  const bool cacheable =
      result_cache_enabled_ && request.use_result_cache && request.deadline_ms <= 0.0;
  const std::string key = cacheable ? request.cache_key() : std::string();

  if (cacheable) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = results_.find(key); it != results_.end()) {
      reply.result = it->second;
      reply.result_cache_hit = true;
      reply.warm_view = true;
      ++result_cache_hits_;
      reply.registry.add("serve.result_cache_hit");
      reply.registry.add_seconds("serve.request", elapsed_seconds(start));
      return reply;
    }
  }

  const std::shared_ptr<Prepared> prepared = prepared_for(request, &reply.warm_view);

  pc::PcConfig config;
  config.threshold_override = request.threshold;
  config.cost_limit = request.cost_limit;
  config.search_threads = request.search_threads;
  if (request.deadline_ms > 0.0) config.wall_budget_seconds = request.deadline_ms / 1000.0;

  pc::DirectiveSet directives;
  if (!request.directives_text.empty())
    directives = pc::DirectiveSet::parse(request.directives_text);

  // The variant-runner idiom: an independent consultant over the shared
  // immutable view. The session object itself is never mutated here, so
  // any number of requests can run against one Prepared concurrently.
  pc::PerformanceConsultant consultant(prepared->session->view(), config, directives);
  const pc::DiagnosisResult result = consultant.run();

  reply.result = diagnose_result_json(
      request.app, result, request.want_shg ? consultant.shg().render() : std::string());
  reply.registry.merge_from(consultant.tracer().registry());

  if (cacheable && !result.stats.deadline_hit) {
    std::lock_guard<std::mutex> lock(mu_);
    results_.emplace(key, reply.result);
  }
  reply.registry.add_seconds("serve.request", elapsed_seconds(start));
  return reply;
}

}  // namespace histpc::serve
