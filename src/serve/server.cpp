#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/log.h"

namespace histpc::serve {

namespace {

HttpResponse json_response(int status, const util::Json& body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = body.dump() + "\n";
  return resp;
}

HttpResponse error_response(int status, const std::string& message) {
  util::Json j = util::Json::object();
  j["error"] = message;
  j["status"] = status;
  return json_response(status, j);
}

}  // namespace

DiagnosisServer::DiagnosisServer(ServeConfig config)
    : config_(std::move(config)),
      sessions_(config_.trace_cache_dir, config_.result_cache),
      store_(config_.store_dir) {
  if (config_.perf_log) {
    const std::string path =
        config_.perf_log_path.empty()
            ? telemetry::PerfLog::path_in_store(config_.store_dir, "serve")
            : config_.perf_log_path;
    perf_log_ = std::make_unique<telemetry::PerfLog>(path);
  }
}

DiagnosisServer::~DiagnosisServer() { stop(); }

void DiagnosisServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  const std::string host =
      config_.host == "localhost" || config_.host.empty() ? "127.0.0.1" : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: host '" + config_.host + "' is not a numeric IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " + host + ":" +
                             std::to_string(config_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  stopping_.store(false);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  workers_ = std::make_unique<util::ThreadPool>(util::ThreadPool::resolve(config_.threads));
  acceptor_ = std::thread([this] { accept_loop(); });
  running_.store(true);
}

void DiagnosisServer::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void DiagnosisServer::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void DiagnosisServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Unblock accept(): shutdown makes the blocked call return; close frees
  // the descriptor once the acceptor is done with it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  workers_.reset();  // drains queued requests, then joins
  request_stop();    // release any wait()er
}

void DiagnosisServer::accept_loop() {
  while (!stopping_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) break;
      continue;
    }
    ++accepted_;
    // A slow peer must not pin a worker forever.
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    // Admission control: the counter covers queued + executing requests.
    // Shedding happens here, on the acceptor, with a canned response — a
    // saturated server answers 429 in microseconds instead of stacking
    // work it cannot finish.
    if (in_flight_.fetch_add(1) >= config_.queue_depth) {
      in_flight_.fetch_sub(1);
      ++shed_;
      write_all(client, serialize_response(
                            error_response(429, "server overloaded; request shed")));
      ::close(client);
      continue;
    }
    workers_->submit([this, client] { handle_connection(client); });
  }
}

void DiagnosisServer::handle_connection(int fd) {
  int status = 0;
  std::string error;
  HttpResponse resp;
  if (auto req = read_http_request(fd, config_.max_body_bytes, &status, &error)) {
    resp = handle(*req);
  } else {
    resp = error_response(status ? status : 400, error);
  }
  if (resp.status >= 400) ++http_errors_;
  write_all(fd, serialize_response(resp));
  ::close(fd);
  ++served_;
  in_flight_.fetch_sub(1);
}

ServeStats DiagnosisServer::stats() const {
  ServeStats s;
  s.accepted = accepted_.load();
  s.served = served_.load();
  s.shed = shed_.load();
  s.http_errors = http_errors_.load();
  s.diagnoses = diagnoses_.load();
  s.result_cache_hits = sessions_.result_cache_hits();
  s.warm_view_hits = sessions_.warm_hits();
  s.cold_builds = sessions_.cold_builds();
  s.in_flight = in_flight_.load();
  return s;
}

HttpResponse DiagnosisServer::handle(const HttpRequest& request) {
  try {
    if (request.target == "/healthz") {
      util::Json j = util::Json::object();
      j["ok"] = true;
      return json_response(200, j);
    }
    if (request.target == "/stats") {
      const ServeStats s = stats();
      util::Json j = util::Json::object();
      j["accepted"] = s.accepted;
      j["served"] = s.served;
      j["shed"] = s.shed;
      j["http_errors"] = s.http_errors;
      j["diagnoses"] = s.diagnoses;
      j["result_cache_hits"] = s.result_cache_hits;
      j["warm_view_hits"] = s.warm_view_hits;
      j["cold_builds"] = s.cold_builds;
      j["in_flight"] = s.in_flight;
      j["threads"] = workers_ ? workers_->size() : 0;
      j["queue_depth"] = config_.queue_depth;
      return json_response(200, j);
    }
    if (request.target == "/shutdown") {
      request_stop();
      util::Json j = util::Json::object();
      j["ok"] = true;
      j["stopping"] = true;
      return json_response(200, j);
    }

    const util::Json body =
        request.body.empty() ? util::Json::object() : util::Json::parse(request.body);
    if (request.target == "/diagnose") return handle_diagnose(body);
    if (request.target == "/list") return handle_list(body);
    if (request.target == "/perf-report") return handle_perf_report(body);
    if (request.target == "/debug/sleep") {
      // Test hook: hold this worker so admission-control behaviour can be
      // exercised deterministically. Bounded to keep a stray request from
      // wedging a worker for long.
      const double ms = std::clamp(body.get_or("ms", 0.0), 0.0, 10'000.0);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      util::Json j = util::Json::object();
      j["slept_ms"] = ms;
      return json_response(200, j);
    }
    return error_response(404, "unknown endpoint " + request.target);
  } catch (const util::JsonError& e) {
    return error_response(400, e.what());
  } catch (const std::invalid_argument& e) {
    return error_response(400, e.what());
  } catch (const std::exception& e) {
    // The server must survive any single bad request; name the failure and
    // move on.
    HISTPC_LOG(Warn) << "serve: request failed: " << e.what();
    return error_response(500, e.what());
  }
}

HttpResponse DiagnosisServer::handle_diagnose(const util::Json& body) {
  const DiagnoseRequest req = DiagnoseRequest::from_json(body);
  const auto start = std::chrono::steady_clock::now();
  const DiagnoseReply reply = sessions_.diagnose(req);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  ++diagnoses_;
  append_perf_record(req, reply);

  util::Json out = util::Json::object();
  out["result"] = reply.result;
  util::Json server = util::Json::object();
  server["warm_view"] = reply.warm_view;
  server["result_cache_hit"] = reply.result_cache_hit;
  server["wall_ms"] = wall_ms;
  out["server"] = std::move(server);
  return json_response(200, out);
}

HttpResponse DiagnosisServer::handle_list(const util::Json& body) const {
  history::StoreQuery query;
  query.app = body.get_or("app", std::string());
  query.version = body.get_or("version", std::string());
  query.machine = body.get_or("machine", std::string());
  query.scenario = body.get_or("scenario", std::string());
  util::Json records = util::Json::array();
  for (const history::IndexEntry& e : store_.summaries(query)) {
    util::Json o = util::Json::object();
    o["run_id"] = e.run_id;
    o["app"] = e.app;
    o["version"] = e.version;
    o["machine"] = e.machine;
    o["scenario"] = e.scenario;
    o["ranks"] = e.nranks;
    o["duration"] = e.duration;
    o["bottlenecks"] = e.bottlenecks;
    records.push_back(std::move(o));
  }
  util::Json j = util::Json::object();
  j["records"] = std::move(records);
  return json_response(200, j);
}

HttpResponse DiagnosisServer::handle_perf_report(const util::Json& body) const {
  const std::string app = body.get_or("app", std::string());
  if (app.empty()) throw util::JsonError("field 'app' must name an application");
  const telemetry::PerfLog log(telemetry::PerfLog::path_in_store(config_.store_dir, app));
  const auto latest = log.latest();
  if (!latest) return error_response(404, "no perf records for app '" + app + "'");
  util::Json j = util::Json::object();
  j["record"] = latest->to_json();
  return json_response(200, j);
}

void DiagnosisServer::append_perf_record(const DiagnoseRequest& request,
                                         const DiagnoseReply& reply) {
  if (!perf_log_) return;
  telemetry::PerfRecord rec;
  // The server's own log lives under app "serve" (one JSONL per store, the
  // path perf-report/perf-diff --app serve resolve); which application was
  // diagnosed is a config knob of the measurement, not its identity.
  rec.app = "serve";
  rec.version = request.app;
  rec.kind = "serve";
  rec.machine = telemetry::machine_name();
  rec.build = telemetry::build_id();
  rec.config["app"] = request.app;
  rec.config["threads"] = std::to_string(workers_ ? workers_->size() : 0);
  rec.config["queue_depth"] = std::to_string(config_.queue_depth);
  rec.config["search_threads"] = std::to_string(request.search_threads);
  rec.config["result_cache"] = config_.result_cache ? "1" : "0";
  rec.registry = reply.registry;
  std::lock_guard<std::mutex> lock(perf_mu_);
  try {
    perf_log_->append(rec);
  } catch (const std::exception& e) {
    HISTPC_LOG(Warn) << "serve: cannot append perf record: " << e.what();
  }
}

}  // namespace histpc::serve
