#include "util/log.h"

#include <cstdio>
#include <set>

namespace histpc::util {

namespace {
LogLevel g_level = LogLevel::Warn;
LogSink g_sink;  // empty = default stderr sink
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }
void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  // A mistyped level would otherwise silently change verbosity; warn once
  // per distinct bad value.
  static std::set<std::string> warned;
  if (warned.insert(name).second)
    HISTPC_LOG(Warn) << "unknown log level '" << name << "', defaulting to info";
  return LogLevel::Info;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace histpc::util
