#include "util/log.h"

#include <cstdio>

namespace histpc::util {

namespace {
LogLevel g_level = LogLevel::Warn;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Info;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace histpc::util
