#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace histpc::util {

Json& JsonObject::operator[](std::string_view key) {
  if (Json* existing = find(key)) return *existing;
  entries_.emplace_back(std::string(key), Json());
  return entries_.back().second;
}

const Json* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

Json* JsonObject::find(std::string_view key) {
  for (auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

Json::Json(const Json& other)
    : type_(other.type_), bool_(other.bool_), num_(other.num_), str_(other.str_) {
  if (other.arr_) arr_ = std::make_shared<JsonArray>(*other.arr_);
  if (other.obj_) obj_ = std::make_shared<JsonObject>(*other.obj_);
}

Json& Json::operator=(const Json& other) {
  if (this != &other) {
    Json copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void Json::require(Type t) const {
  if (type_ != t) throw JsonError("json: wrong type access");
}

const Json& Json::at(std::string_view key) const {
  const Json* v = as_object().find(key);
  if (!v) throw JsonError("json: missing key '" + std::string(key) + "'");
  return *v;
}

double Json::get_or(std::string_view key, double fallback) const {
  const Json* v = as_object().find(key);
  return v && v->is_number() ? v->as_double() : fallback;
}

std::string Json::get_or(std::string_view key, const std::string& fallback) const {
  const Json* v = as_object().find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

bool Json::get_or(std::string_view key, bool fallback) const {
  const Json* v = as_object().find(key);
  return v && v->is_bool() ? v->as_bool() : fallback;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return num_ == other.num_;
    case Type::String: return str_ == other.str_;
    case Type::Array: {
      const auto& a = *arr_;
      const auto& b = *other.arr_;
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i])) return false;
      return true;
    }
    case Type::Object: {
      const auto& a = *obj_;
      const auto& b = *other.obj_;
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        const Json* bv = b.find(k);
        if (!bv || !(*bv == v)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; the store never produces them, but be defensive.
    out += "null";
    return;
  }
  double integral = 0.0;
  if (std::modf(v, &integral) == 0.0 && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
  } else {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, num_); break;
    case Type::String: escape_string(out, str_); break;
    case Type::Array: {
      const auto& a = *arr_;
      if (a.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        a[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      const auto& o = *obj_;
      if (o.empty()) { out += "{}"; break; }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': if (consume_literal("true")) return Json(true); fail("bad literal");
      case 'f': if (consume_literal("false")) return Json(false); fail("bad literal");
      case 'n': if (consume_literal("null")) return Json(); fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') { ++pos_; return Json(std::move(obj)); }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == '}') { ++pos_; break; }
      fail("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') { ++pos_; return Json(std::move(arr)); }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == ']') { ++pos_; break; }
      fail("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Store names are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    std::string num(text_.substr(start, pos_ - start));
    try {
      std::size_t consumed = 0;
      double v = std::stod(num, &consumed);
      if (consumed != num.size()) fail("bad number");
      return Json(v);
    } catch (const std::exception&) {
      fail("bad number '" + num + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open file: " + path);
  // Size the result up front and read in one call: streaming through a
  // stringstream copies the content twice, which is measurable on the
  // multi-megabyte binary trace snapshots.
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) throw JsonError("cannot determine size of file: " + path);
  in.seekg(0, std::ios::beg);
  std::string content(static_cast<std::size_t>(size), '\0');
  in.read(content.data(), size);
  if (!in && size > 0) throw JsonError("cannot read file: " + path);
  return content;
}

void write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw JsonError("cannot open file for write: " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) throw JsonError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw JsonError("rename failed: " + path);
}

}  // namespace histpc::util
