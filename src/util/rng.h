// Deterministic seeded RNG (xoshiro256**) for workload generation.
//
// The simulator must be bit-reproducible across runs and platforms; std::
// distributions are implementation-defined, so we provide our own uniform /
// normal transforms on top of a fixed-algorithm generator.
#pragma once

#include <cmath>
#include <cstdint>

namespace histpc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, the reference initialization for xoshiro.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace histpc::util
