// Minimal self-contained JSON value, parser, and writer.
//
// HistPC persists experiment records (resource hierarchies, search history
// graphs, measured fractions) across runs; JSON keeps the store inspectable
// with standard tooling without pulling in an external dependency.
//
// Supported: null, bool, double, string, array, object (insertion-ordered).
// Numbers are stored as double, which is exact for the integer ranges the
// store uses (counts and ids well below 2^53).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace histpc::util {

class Json;
using JsonArray = std::vector<Json>;

/// Insertion-ordered string->Json map. Lookup is linear; objects in the
/// experiment store are small (tens of keys), and preserving order keeps
/// serialized records diffable.
class JsonObject {
 public:
  Json& operator[](std::string_view key);
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key);
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::size_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(JsonArray a) : type_(Type::Array), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o) : type_(Type::Object), obj_(std::make_shared<JsonObject>(std::move(o))) {}

  /// Copies are deep: mutating a copy never affects the original.
  Json(const Json& other);
  Json& operator=(const Json& other);
  Json(Json&&) = default;
  Json& operator=(Json&&) = default;
  ~Json() = default;

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { require(Type::Bool); return bool_; }
  double as_double() const { require(Type::Number); return num_; }
  std::int64_t as_int() const { require(Type::Number); return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { require(Type::String); return str_; }

  JsonArray& as_array() { require(Type::Array); return *arr_; }
  const JsonArray& as_array() const { require(Type::Array); return *arr_; }
  JsonObject& as_object() { require(Type::Object); return *obj_; }
  const JsonObject& as_object() const { require(Type::Object); return *obj_; }

  /// Object element access; creates members on mutable access.
  Json& operator[](std::string_view key) { return as_object()[key]; }
  /// Checked lookup: throws JsonError when the key is missing.
  const Json& at(std::string_view key) const;
  /// Lookup with fallback for optional fields.
  double get_or(std::string_view key, double fallback) const;
  std::string get_or(std::string_view key, const std::string& fallback) const;
  bool get_or(std::string_view key, bool fallback) const;

  void push_back(Json v) { as_array().push_back(std::move(v)); }

  /// Serialize. `indent` <= 0 yields compact single-line output.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; throws JsonError with offset context.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void require(Type t) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Containers live behind pointers so Json stays a small value type;
  // copy operations clone them (see the copy constructor).
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Read an entire file; throws JsonError on IO failure.
std::string read_file(const std::string& path);
/// Write `content` to `path` atomically (temp file + rename).
void write_file(const std::string& path, std::string_view content);

}  // namespace histpc::util
