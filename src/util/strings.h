// String utilities shared across HistPC modules.
//
// All helpers are allocation-conscious: splitting returns string_views into
// the caller's buffer where lifetimes allow, and joining reserves up front.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace histpc::util {

/// Split `s` on `sep`, returning views into `s`. Empty fields are kept
/// (so "/a//b" split on '/' yields "", "a", "", "b").
std::vector<std::string_view> split_view(std::string_view s, char sep);

/// Split `s` on `sep`, returning owned strings.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts, std::string_view sep);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `name` equals `prefix` or begins with `prefix` followed by '/'.
/// This is the path-prefix test used for resource-name containment, so
/// "/Code/a.f" prefixes "/Code/a.f/f1" but not "/Code/a.fx".
bool is_path_prefix(std::string_view prefix, std::string_view name);

/// Levenshtein edit distance; used by the similarity-based auto-mapper.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Similarity in [0,1]: 1 - dist/max_len (1.0 for two empty strings).
double name_similarity(std::string_view a, std::string_view b);

/// Format a double with `prec` digits after the decimal point.
std::string fmt_double(double v, int prec = 1);

/// Format a fraction as a percentage string, e.g. 0.935 -> "93.5%".
std::string fmt_percent(double fraction, int prec = 1);

/// Format seconds with a unit scaled to the magnitude: "85ns", "3.142us",
/// "12.70ms", "2.400s". The same function renders quantiles in both the
/// perf-report table and its tests, so a table cell and the --json value
/// it mirrors stay bit-identical (one double, one formatter).
std::string fmt_seconds(double seconds);

}  // namespace histpc::util
