// Fixed-size worker pool shared by the parallel subsystems: the variant
// runner (whole diagnoses in parallel) and the Performance Consultant's
// speculative search (pre-evaluation of likely refinement candidates).
//
// Deliberately minimal: a bounded set of threads draining a FIFO queue of
// void() tasks. There is no future/promise layer — callers that need a
// result publish it through their own synchronized structure (e.g.
// metrics::SpecGroup) and either wait on that structure or on wait_idle().
// Tasks must not throw; wrap fallible work in try/catch and stash the
// exception (variant_runner keeps a per-variant std::exception_ptr).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace histpc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). The pool is fixed-size
  /// for its lifetime.
  explicit ThreadPool(int threads);

  /// Drains the queue (runs every submitted task), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is executing. Tasks
  /// submitted while waiting extend the wait.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Canonical "0 means all cores" resolution used by every --*-threads
  /// flag: requested <= 0 maps to hardware_concurrency (minimum 1).
  static int resolve(int requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;  ///< signals workers: work or shutdown
  std::condition_variable cv_idle_;  ///< signals waiters: possibly idle
  std::size_t busy_ = 0;             ///< tasks currently executing
  bool shutdown_ = false;
};

}  // namespace histpc::util
