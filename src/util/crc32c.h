// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78).
//
// The checksum every versioned binary format in HistPC trails its payload
// with (trace snapshots, experiment records): it has a hardware instruction
// on x86-64 (SSE4.2), and the checksum pass over a multi-megabyte snapshot
// would otherwise dominate the warm-load path the caches exist to make
// cheap. Dispatch is runtime via util::cpu_features(), so HISTPC_NO_SIMD /
// HISTPC_SIMD steer this path too; the software fallback is slice-by-8.
#pragma once

#include <cstdint>
#include <string_view>

namespace histpc::util {

/// CRC-32C of `bytes` (initial value 0xFFFFFFFF, final xor-out).
std::uint32_t crc32c(std::string_view bytes);

}  // namespace histpc::util
