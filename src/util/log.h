// Leveled logging with a process-wide level, writing to stderr.
//
// The Performance Consultant emits Trace-level lines for every search event
// (instrument, conclude, refine); benches run with Warn to keep table output
// clean, and tests raise the level when debugging a search.
#pragma once

#include <sstream>
#include <string>

namespace histpc::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);
const char* log_level_name(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; unknown -> Info.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Builds one log line; emits on destruction. Use via the HISTPC_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace histpc::util

// Short-circuits stream construction when the level is filtered out.
#define HISTPC_LOG(level)                                            \
  if (::histpc::util::log_level() > ::histpc::util::LogLevel::level) \
    ;                                                                \
  else                                                               \
    ::histpc::util::LogLine(::histpc::util::LogLevel::level)
