// Leveled logging with a process-wide level and a pluggable sink
// (defaulting to stderr).
//
// The Performance Consultant emits Trace-level lines for every search event
// (instrument, conclude, refine); benches run with Warn to keep table output
// clean, and tests raise the level when debugging a search. Structured
// machine-readable search telemetry lives in src/telemetry — the log is for
// humans.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace histpc::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);
const char* log_level_name(LogLevel level);

/// Where emitted lines go. The default sink writes "[LEVEL] message\n" to
/// stderr; tests install a capturing sink so ctest output stays clean.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the sink; an empty function restores the stderr default.
/// Like the level, the sink is process-wide and not synchronized.
void set_log_sink(LogSink sink);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off". Unknown names map to
/// Info and emit a one-time Warn line naming the bad value (once per
/// distinct value, so a mistyped flag is reported, not spammed).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Builds one log line; emits on destruction. Use via the HISTPC_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace histpc::util

// Short-circuits stream construction when the level is filtered out.
#define HISTPC_LOG(level)                                            \
  if (::histpc::util::log_level() > ::histpc::util::LogLevel::level) \
    ;                                                                \
  else                                                               \
    ::histpc::util::LogLine(::histpc::util::LogLevel::level)
