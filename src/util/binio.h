// Little-endian binary wire helpers shared by HistPC's versioned columnar
// formats (trace snapshots, experiment records).
//
// Writers append to a std::string: fixed-width integers and doubles in
// little-endian byte order, strings length-prefixed (u32 byte count, then
// bytes, no terminator), and whole SoA columns as one memcpy-style append
// on little-endian targets.
//
// The reader is a bounds-checked cursor templated on the error type, so
// each format keeps throwing its own exception class (SnapshotError,
// ExpSnapshotError, ...) with messages that name the offending field and
// offset.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace histpc::util::binio {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 4);
}

inline void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 8);
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Append a whole column. On little-endian targets the element bytes are
/// already in wire order, so the column is one memcpy-style append.
template <typename T>
void put_column(std::string& out, const std::vector<T>& col) {
  if (col.empty()) return;  // data() of an empty vector may be null
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(col.data()), col.size() * sizeof(T));
  } else {
    for (const T& v : col) {
      if constexpr (sizeof(T) == 8)
        put_u64(out, std::bit_cast<std::uint64_t>(v));
      else if constexpr (sizeof(T) == 4)
        put_u32(out, std::bit_cast<std::uint32_t>(v));
      else
        put_u8(out, std::bit_cast<std::uint8_t>(v));
    }
  }
}

/// Bounds-checked little-endian reader. `Error` is the exception type the
/// owning format throws (must be constructible from std::string).
template <typename Error>
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;

  /// Throws `Error` naming `what` if fewer than `n` bytes remain.
  void need(std::size_t n, const char* what) const {
    if (n > size - off)
      throw Error("snapshot truncated reading " + std::string(what) + " at offset " +
                  std::to_string(off));
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[off++]);
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
    off += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
    off += 8;
    return v;
  }

  std::int32_t i32(const char* what) { return static_cast<std::int32_t>(u32(what)); }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    need(n, what);
    std::string s(data + off, n);
    off += n;
    return s;
  }

  /// Read `n` elements into `col`. The element count was produced by a
  /// length field, so the remaining-bytes check also bounds the allocation.
  template <typename T>
  void column(std::vector<T>& col, std::size_t n, const char* what) {
    need(n * sizeof(T), what);
    col.resize(n);
    if (n == 0) return;  // data() of an empty vector may be null
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(col.data(), data + off, n * sizeof(T));
      off += n * sizeof(T);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if constexpr (sizeof(T) == 8)
          col[i] = std::bit_cast<T>(u64(what));
        else if constexpr (sizeof(T) == 4)
          col[i] = std::bit_cast<T>(u32(what));
        else
          col[i] = std::bit_cast<T>(u8(what));
      }
    }
  }
};

}  // namespace histpc::util::binio
