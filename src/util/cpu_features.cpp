#include "util/cpu_features.h"

#include <cstdlib>
#include <string>

#include "util/log.h"

namespace histpc::util {

namespace {

SimdLevel hardware_level(bool sse42, bool avx2) {
  if (avx2) return SimdLevel::Avx2;
  if (sse42) return SimdLevel::Sse42;
  return SimdLevel::Scalar;
}

/// Applies the HISTPC_NO_SIMD / HISTPC_SIMD environment caps to the
/// hardware level. An unknown HISTPC_SIMD value is reported and ignored.
SimdLevel apply_env_caps(SimdLevel hw, std::string* note) {
  if (const char* no_simd = std::getenv("HISTPC_NO_SIMD");
      no_simd != nullptr && *no_simd != '\0' && std::string(no_simd) != "0") {
    *note = " (HISTPC_NO_SIMD set)";
    return SimdLevel::Scalar;
  }
  const char* cap = std::getenv("HISTPC_SIMD");
  if (cap == nullptr || *cap == '\0') return hw;
  const std::string want(cap);
  SimdLevel capped = hw;
  if (want == "scalar") {
    capped = SimdLevel::Scalar;
  } else if (want == "sse4.2" || want == "sse42") {
    capped = SimdLevel::Sse42;
  } else if (want == "avx2") {
    capped = SimdLevel::Avx2;
  } else {
    *note = " (unknown HISTPC_SIMD value '" + want + "' ignored)";
    return hw;
  }
  // A cap can only lower the level: requesting avx2 on hardware without it
  // still runs what the machine supports.
  if (static_cast<int>(capped) < static_cast<int>(hw)) {
    *note = " (capped by HISTPC_SIMD=" + want + ")";
    return capped;
  }
  return hw;
}

CpuFeatures probe() {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  f.has_sse42 = __builtin_cpu_supports("sse4.2");
  f.has_avx2 = __builtin_cpu_supports("avx2");
#endif
  std::string note;
#ifdef HISTPC_ENABLE_SIMD
  f.selected = apply_env_caps(hardware_level(f.has_sse42, f.has_avx2), &note);
#else
  note = " (built with HISTPC_ENABLE_SIMD=OFF)";
#endif
  HISTPC_LOG(Info) << "cpu features: sse4.2=" << (f.has_sse42 ? "yes" : "no")
                   << " avx2=" << (f.has_avx2 ? "yes" : "no")
                   << ", selected lanes: " << simd_level_name(f.selected) << note;
  return f;
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Sse42: return "sse4.2";
    case SimdLevel::Avx2: return "avx2";
  }
  return "scalar";
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace histpc::util
