#include "util/csv.h"

#include <stdexcept>

#include "util/json.h"  // for write_file

namespace histpc::util {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("CsvWriter: row width mismatch");
  rows_.push_back(std::move(cells));
}

namespace {
void append_cell(std::string& out, const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    append_cell(out, row[i]);
  }
  out += '\n';
}
}  // namespace

std::string CsvWriter::to_string() const {
  std::string out;
  append_row(out, headers_);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void CsvWriter::save(const std::string& path) const { write_file(path, to_string()); }

}  // namespace histpc::util
