// CSV emission for bench results (machine-readable sibling of TablePrinter).
#pragma once

#include <string>
#include <vector>

namespace histpc::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with RFC-4180 quoting for cells containing ',', '"' or newlines.
  std::string to_string() const;

  /// Write to a file via util::write_file (atomic).
  void save(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace histpc::util
