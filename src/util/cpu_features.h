// Runtime CPU-feature detection shared by every SIMD dispatch site.
//
// The CRC-32C lanes in simmpi/trace_snapshot and the block-max metric
// kernels in metrics/block_index both pick between scalar, SSE4.2, and
// AVX2 code paths at runtime. This helper centralizes the probing (one
// CPUID-backed query, cached for the process) so every site agrees on the
// selected lanes and on the override knobs:
//
//  * compile time: building with -DHISTPC_ENABLE_SIMD=OFF removes every
//    intrinsic code path, and cpu_features() reports Scalar;
//  * run time: HISTPC_NO_SIMD=1 forces Scalar, HISTPC_SIMD=scalar|sse4.2|
//    avx2 caps the selected level (useful for A/B benchmarks and the CI
//    scalar-fallback leg).
//
// The first call logs one Info line naming the detected and selected
// lanes, so a diagnosis log always records which kernels produced it.
#pragma once

namespace histpc::util {

/// Instruction-set tiers the kernels dispatch on, in strength order.
enum class SimdLevel { Scalar = 0, Sse42 = 1, Avx2 = 2 };

const char* simd_level_name(SimdLevel level);

struct CpuFeatures {
  bool has_sse42 = false;  ///< raw hardware capability
  bool has_avx2 = false;   ///< raw hardware capability
  /// Level the process should use: hardware capability capped by the
  /// HISTPC_ENABLE_SIMD build option and the HISTPC_NO_SIMD / HISTPC_SIMD
  /// environment toggles.
  SimdLevel selected = SimdLevel::Scalar;
};

/// Cached process-wide probe; thread-safe (static-init once). The first
/// call emits the one-time "cpu features" log line.
const CpuFeatures& cpu_features();

}  // namespace histpc::util
