#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace histpc::util {

std::vector<std::string_view> split_view(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto v : split_view(s, sep)) out.emplace_back(v);
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename Vec>
std::string join_impl(const Vec& parts, std::string_view sep) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  std::string out;
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}
std::string join(const std::vector<std::string_view>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_path_prefix(std::string_view prefix, std::string_view name) {
  if (prefix.empty()) return true;
  if (!starts_with(name, prefix)) return false;
  return name.size() == prefix.size() || name[prefix.size()] == '/';
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Classic two-row dynamic program; sizes here are resource-name sized
  // (tens of chars), so quadratic time is fine.
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double name_similarity(std::string_view a, std::string_view b) {
  std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(edit_distance(a, b)) / static_cast<double>(longest);
}

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_percent(double fraction, int prec) {
  return fmt_double(fraction * 100.0, prec) + "%";
}

std::string fmt_seconds(double seconds) {
  const double mag = seconds < 0 ? -seconds : seconds;
  char buf[64];
  if (mag < 1e-9) {
    // Sub-ns values only arise from division artifacts; show raw seconds.
    std::snprintf(buf, sizeof buf, "%.3gs", seconds);
  } else if (mag < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.0fns", seconds * 1e9);
  } else if (mag < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fus", seconds * 1e6);
  } else if (mag < 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", seconds);
  }
  return buf;
}

}  // namespace histpc::util
