// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables; TablePrinter
// keeps their output layout uniform (header row, separator, aligned cells).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace histpc::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; missing trailing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with a header separator and 2-space column gaps.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace histpc::util
