#include "util/crc32c.h"

#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "util/cpu_features.h"

namespace histpc::util {

namespace {

std::uint32_t crc32c_sw(const char* p, std::size_t n, std::uint32_t crc) {
  // Slice-by-8 software fallback (~1 ns/byte vs ~3 ns/byte for the naive
  // byte-at-a-time loop).
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int s = 1; s < 8; ++s) t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    return t;
  }();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    if constexpr (std::endian::native != std::endian::little) {
      // The slicing tables assume little-endian word loads.
      auto bswap = [](std::uint32_t v) {
        return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24);
      };
      lo = bswap(lo);
      hi = bswap(hi);
    }
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^ tables[3][hi & 0xFFu] ^
          tables[2][(hi >> 8) & 0xFFu] ^ tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n)
    crc = tables[0][(crc ^ static_cast<unsigned char>(*p)) & 0xFFu] ^ (crc >> 8);
  return crc;
}

#if defined(HISTPC_ENABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HISTPC_HAVE_HW_CRC32C 1

// CRC is linear over GF(2): appending `len` zero bytes to a message maps
// its CRC through a fixed 32x32 bit matrix, so crc(A||B) =
// shift_len(B)(crc(A)) ^ crc0(B). We precompute that operator for one
// fixed block size as four 256-entry tables (Adler's matrix-squaring
// trick from zlib's crc32_combine) and use it to merge independent lanes.
struct CrcShift {
  std::uint32_t t[4][256];
};

std::uint32_t gf2_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

CrcShift make_crc_shift(std::size_t zero_bytes) {
  // Operator for one zero bit of a reflected CRC: bit 0 folds the
  // polynomial in, every other bit shifts down by one.
  std::uint32_t a[32], b[32];
  a[0] = 0x82F63B78u;
  for (int i = 1; i < 32; ++i) a[i] = 1u << (i - 1);
  std::uint32_t* cur = a;
  std::uint32_t* nxt = b;
  for (std::size_t bits = 1; bits < 8 * zero_bytes; bits <<= 1) {
    for (int i = 0; i < 32; ++i) nxt[i] = gf2_times(cur, cur[i]);  // square
    std::swap(cur, nxt);
  }
  CrcShift s;
  for (int k = 0; k < 4; ++k)
    for (std::uint32_t i = 0; i < 256; ++i) s.t[k][i] = gf2_times(cur, i << (8 * k));
  return s;
}

std::uint32_t apply_crc_shift(const CrcShift& s, std::uint32_t crc) {
  return s.t[0][crc & 0xFFu] ^ s.t[1][(crc >> 8) & 0xFFu] ^ s.t[2][(crc >> 16) & 0xFFu] ^
         s.t[3][crc >> 24];
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const char* p, std::size_t n,
                                                          std::uint32_t crc) {
  // The crc32 instruction has multi-cycle latency but single-cycle
  // throughput, so one dependency chain runs at a third of peak; run
  // three independent lanes per block and merge them with the
  // precomputed shift operator.
  constexpr std::size_t kLane = 1024;
  static const CrcShift shift_lane = make_crc_shift(kLane);
  std::uint64_t c0 = crc;
  while (n >= 3 * kLane) {
    std::uint64_t c1 = 0, c2 = 0;
    const char* p1 = p + kLane;
    const char* p2 = p + 2 * kLane;
    for (std::size_t i = 0; i < kLane; i += 8) {
      std::uint64_t v0, v1, v2;
      std::memcpy(&v0, p + i, 8);
      std::memcpy(&v1, p1 + i, 8);
      std::memcpy(&v2, p2 + i, 8);
      c0 = __builtin_ia32_crc32di(c0, v0);
      c1 = __builtin_ia32_crc32di(c1, v1);
      c2 = __builtin_ia32_crc32di(c2, v2);
    }
    c0 = apply_crc_shift(shift_lane, static_cast<std::uint32_t>(c0)) ^ c1;
    c0 = apply_crc_shift(shift_lane, static_cast<std::uint32_t>(c0)) ^ c2;
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c0 = __builtin_ia32_crc32di(c0, v);
    p += 8;
    n -= 8;
  }
  while (n--)
    c0 = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(c0),
                                static_cast<unsigned char>(*p++));
  return static_cast<std::uint32_t>(c0);
}
#endif

}  // namespace

std::uint32_t crc32c(std::string_view bytes) {
#ifdef HISTPC_HAVE_HW_CRC32C
  // Shared runtime dispatch (util/cpu_features): the same probe the metric
  // kernels use, so HISTPC_NO_SIMD / HISTPC_SIMD also steer the CRC path.
  static const bool hw = cpu_features().selected >= SimdLevel::Sse42;
  if (hw) return crc32c_hw(bytes.data(), bytes.size(), 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
#endif
  return crc32c_sw(bytes.data(), bytes.size(), 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

}  // namespace histpc::util
