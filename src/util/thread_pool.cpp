#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace histpc::util {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

int ThreadPool::resolve(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with a drained queue
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    lock.unlock();
    task();
    lock.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) cv_idle_.notify_all();
  }
}

}  // namespace histpc::util
